"""Dispatch-loop interpreter for the register-bytecode VM engine.

One Python ``while`` loop executes the flat instruction tuples emitted
by :mod:`repro.vm.compile`.  The hot half of the ISA (arithmetic, fused
compare-branches, slot moves, array/symmetric access) is inlined in a
nested if-chain ordered by opcode number; everything else dispatches
through a handler table.  All operator fallbacks, coercions and error
messages are the closure engine's own (:mod:`repro.interp.closures`
helpers are reused directly), so results are bit-identical.

Inline caches
-------------

Symmetric-heap access (``SYM_LD``/``SYM_ST``/``SYM_LDX``/``SYM_STX``)
is the one path where the closure engine pays a name lookup per access.
The VM caches the resolved per-PE cell per *site*: each site gets an
index into a per-code-object cache list, validated against the heap's
``version`` generation counter (bumped on every symbol-table change).
Caches are disabled while a race detector is attached, because
``local_read``/``local_write`` must keep reporting accesses to it.

A tracing JIT would record from :meth:`Machine._exec`: the green key of
a trace is ``(CodeObject, pc)`` and the hot back-edges are ``INC_JMP``
/ ``JMP`` targets, so a recorder only needs to wrap the loop body.
"""

from __future__ import annotations

from typing import Optional

from ..lang.errors import (
    LolNameError,
    LolParallelError,
    LolRuntimeError,
    LolTypeError,
)
from ..lang.types import (
    LolType,
    cast as cast_value,
    coerce_static,
    format_yarn,
    to_array_size,
    to_numbr,
    to_troof,
)
from ..shmem.heap import ArrayCell, ScalarCell
from ..interp.closures import (
    _as_index,
    _dyn_read,
    _dyn_read_element,
    _dyn_write,
    _dyn_write_element,
    _require_target,
    _undeclared,
)
from ..interp.env import UNDECLARED, new_frame
from ..interp.interpreter import (
    KNOWN_LIBRARIES,
    _Break,
    _Return,
    coerce_element,
    coerce_symmetric,
    display_value,
    is_scalar_value,
    write_whole_array,
)
from ..interp.values import (
    _op_add,
    _op_gt,
    _op_lt,
    _op_mul,
    _op_recip,
    _op_sqrt,
    _op_square,
    _op_sub,
    equals,
)
from . import isa
from .isa import CodeObject, VMProgram
from .vectorize import run_vec

_NUMBR = LolType.NUMBR
_NUMBAR = LolType.NUMBAR


class Machine:
    """Per-PE execution state plus the dispatch loop.

    Duck-types :class:`repro.interp.closures._Runtime` (``ctx``,
    ``gframe``, ``functions``, ``target_pe``, ``libraries``) so the
    closure engine's module-level helpers (``_dyn_read`` and friends,
    ``_require_target``) run unchanged against it.
    """

    __slots__ = (
        "ctx",
        "gframe",
        "functions",
        "target_pe",
        "libraries",
        "max_steps",
        "steps",
        "heap",
        "fast_sym",
        "sym_misses",
        "vec_runs",
        "vec_bails",
        "txt_saves",
    )

    def __init__(self, ctx, max_steps: Optional[int] = None) -> None:
        self.ctx = ctx
        self.gframe: list = []
        self.functions: dict = {}
        self.target_pe: Optional[int] = None
        self.libraries: set = set()
        self.max_steps = max_steps
        self.steps = 0
        self.heap = ctx.world.heap
        # Inline caches bypass local_read/local_write, which are the race
        # detector's observation points — so only cache when it is off.
        self.fast_sym = ctx.world.race_detector is None
        self.sym_misses = 0
        self.vec_runs = 0
        self.vec_bails = 0
        #: target_pe values saved by TXT_PUSH and not yet popped; CALL
        #: unwinds these when a FOUND YR (RET) skips the TXT_POPs.
        self.txt_saves: list = []

    def run(self, program: VMProgram) -> None:
        self.functions.update(program.hoisted)
        co = program.co
        self.gframe = new_frame(co.n_slots)
        self._exec(co, self.gframe)

    # -- symmetric-access slow paths (populate the inline caches) ---------

    def _sym_ld_slow(self, caches: list, name: str, ci: int) -> object:
        self.sym_misses += 1
        value = self.ctx.local_read(name)
        if self.fast_sym:
            obj = self.heap._symbols.get(name)
            if obj is not None and not obj.is_array:
                cell = obj.cell(self.ctx.my_pe)
                caches[ci] = (self.heap.version, cell, type(cell) is ScalarCell)
        return value

    def _sym_st_slow(
        self, caches: list, name: str, value: object, ci: int, pos
    ) -> None:
        self.sym_misses += 1
        ctx = self.ctx
        ctx.local_write(name, coerce_symmetric(ctx, name, value, pos))
        if self.fast_sym:
            obj = self.heap._symbols.get(name)
            if (
                obj is not None
                and not obj.is_array
                and (obj.lol_type is _NUMBR or obj.lol_type is _NUMBAR)
            ):
                cell = obj.cell(ctx.my_pe)
                caches[ci] = (
                    self.heap.version,
                    cell,
                    type(cell) is ScalarCell,
                    obj.lol_type,
                )

    def _sym_ldx_slow(
        self, caches: list, name: str, index: int, ci: int
    ) -> object:
        self.sym_misses += 1
        value = self.ctx.local_read(name, index=index)
        if self.fast_sym:
            obj = self.heap._symbols.get(name)
            if obj is not None and obj.is_array:
                cell = obj.cell(self.ctx.my_pe)
                caches[ci] = (
                    self.heap.version,
                    cell.data,
                    cell._conv,
                    len(cell.data),
                )
        return value

    def _sym_stx_slow(
        self, caches: list, name: str, index: int, value: object, ci: int, pos
    ) -> None:
        self.sym_misses += 1
        ctx = self.ctx
        obj = ctx.world.heap.lookup(name)
        ctx.local_write(
            name, coerce_element(value, obj.lol_type, name, pos), index=index
        )
        if self.fast_sym and obj.is_array:
            cell = obj.cell(ctx.my_pe)
            caches[ci] = (
                self.heap.version,
                cell.data,
                obj.lol_type,
                len(cell.data),
            )

    # -- the dispatch loop -------------------------------------------------

    def _exec(
        self,
        co: CodeObject,
        frame: list,
        # Opcode numbers as default args: LOAD_FAST instead of LOAD_GLOBAL
        # on every dispatch.
        LOADC=isa.LOADC,
        MOVE=isa.MOVE,
        ADD_SS=isa.ADD_SS,
        ADD_SC=isa.ADD_SC,
        ADD_CS=isa.ADD_CS,
        SUB_SS=isa.SUB_SS,
        SUB_SC=isa.SUB_SC,
        SUB_CS=isa.SUB_CS,
        MUL_SS=isa.MUL_SS,
        MUL_SC=isa.MUL_SC,
        MUL_CS=isa.MUL_CS,
        SQUARE_S=isa.SQUARE_S,
        SQRT_S=isa.SQRT_S,
        RECIP_S=isa.RECIP_S,
        INC_JMP=isa.INC_JMP,
        JMP=isa.JMP,
        JF=isa.JF,
        JT=isa.JT,
        JEQ=isa.JEQ,
        BR_EQ_SS=isa.BR_EQ_SS,
        BR_EQ_SC=isa.BR_EQ_SC,
        BR_NE_SS=isa.BR_NE_SS,
        BR_NE_SC=isa.BR_NE_SC,
        BR_LT_SS=isa.BR_LT_SS,
        BR_LT_SC=isa.BR_LT_SC,
        BR_LE_SS=isa.BR_LE_SS,
        BR_LE_SC=isa.BR_LE_SC,
        BR_GT_SS=isa.BR_GT_SS,
        BR_GT_SC=isa.BR_GT_SC,
        BR_GE_SS=isa.BR_GE_SS,
        BR_GE_SC=isa.BR_GE_SC,
        LDX=isa.LDX,
        STX=isa.STX,
        SYM_LD=isa.SYM_LD,
        SYM_ST=isa.SYM_ST,
        SYM_LDX=isa.SYM_LDX,
        SYM_STX=isa.SYM_STX,
        ST_TYPED=isa.ST_TYPED,
        ST_DYN=isa.ST_DYN,
        COERCE=isa.COERCE,
        BINOP=isa.BINOP,
        BINOP_SC=isa.BINOP_SC,
        BINOP_CS=isa.BINOP_CS,
        UNOP=isa.UNOP,
        LOAD_ME=isa.LOAD_ME,
        LOAD_NPES=isa.LOAD_NPES,
        RESET=isa.RESET,
        STEP=isa.STEP,
        FLOPS=isa.FLOPS,
        LOOP_VEC=isa.LOOP_VEC,
        HALT=isa.HALT,
        RET=isa.RET,
        RETC=isa.RETC,
        BARRIER=isa.BARRIER,
        GET=isa.GET,
        GETX=isa.GETX,
        PUT=isa.PUT,
        PUTX=isa.PUTX,
        PUT_BARRIER=isa.PUT_BARRIER,
        GET_BIN=isa.GET_BIN,
        RANDOM=isa.RANDOM,
        TXT_PUSH=isa.TXT_PUSH,
        TXT_POP=isa.TXT_POP,
        CAST=isa.CAST,
        NUMBR=_NUMBR,
        NUMBAR=_NUMBAR,
    ):
        code = co.code
        positions = co.positions
        caches = [None] * co.n_caches if co.n_caches else ()
        ctx = self.ctx
        heap = self.heap
        fast = self.fast_sym
        my_pe = ctx.my_pe
        n_pes = ctx.n_pes
        max_steps = self.max_steps
        pc = 0
        while True:
            ins = code[pc]
            op = ins[0]
            # -- constants, moves, arithmetic --------------------------------
            if op < INC_JMP:
                if op == LOADC:
                    frame[ins[1]] = ins[2]
                    pc += 1
                    continue
                if op == MOVE:
                    frame[ins[1]] = frame[ins[2]]
                    pc += 1
                    continue
                if op == ADD_SS:
                    x = frame[ins[2]]
                    y = frame[ins[3]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        frame[ins[1]] = x + y
                    else:
                        frame[ins[1]] = _op_add(x, y, positions[pc])
                    pc += 1
                    continue
                if op == ADD_SC:
                    x = frame[ins[2]]
                    tx = type(x)
                    if tx is int or tx is float:
                        frame[ins[1]] = x + ins[3]
                    else:
                        frame[ins[1]] = _op_add(x, ins[3], positions[pc])
                    pc += 1
                    continue
                if op == ADD_CS:
                    y = frame[ins[3]]
                    ty = type(y)
                    if ty is int or ty is float:
                        frame[ins[1]] = ins[2] + y
                    else:
                        frame[ins[1]] = _op_add(ins[2], y, positions[pc])
                    pc += 1
                    continue
                if op == MUL_SS:
                    x = frame[ins[2]]
                    y = frame[ins[3]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        frame[ins[1]] = x * y
                    else:
                        frame[ins[1]] = _op_mul(x, y, positions[pc])
                    pc += 1
                    continue
                if op == MUL_SC:
                    x = frame[ins[2]]
                    tx = type(x)
                    if tx is int or tx is float:
                        frame[ins[1]] = x * ins[3]
                    else:
                        frame[ins[1]] = _op_mul(x, ins[3], positions[pc])
                    pc += 1
                    continue
                if op == MUL_CS:
                    y = frame[ins[3]]
                    ty = type(y)
                    if ty is int or ty is float:
                        frame[ins[1]] = ins[2] * y
                    else:
                        frame[ins[1]] = _op_mul(ins[2], y, positions[pc])
                    pc += 1
                    continue
                if op == SUB_SS:
                    x = frame[ins[2]]
                    y = frame[ins[3]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        frame[ins[1]] = x - y
                    else:
                        frame[ins[1]] = _op_sub(x, y, positions[pc])
                    pc += 1
                    continue
                if op == SUB_SC:
                    x = frame[ins[2]]
                    tx = type(x)
                    if tx is int or tx is float:
                        frame[ins[1]] = x - ins[3]
                    else:
                        frame[ins[1]] = _op_sub(x, ins[3], positions[pc])
                    pc += 1
                    continue
                if op == SUB_CS:
                    y = frame[ins[3]]
                    ty = type(y)
                    if ty is int or ty is float:
                        frame[ins[1]] = ins[2] - y
                    else:
                        frame[ins[1]] = _op_sub(ins[2], y, positions[pc])
                    pc += 1
                    continue
                if op == SQUARE_S:
                    x = frame[ins[2]]
                    tx = type(x)
                    if tx is int or tx is float:
                        frame[ins[1]] = x * x
                    else:
                        frame[ins[1]] = _op_square(x, positions[pc])
                    pc += 1
                    continue
                if op == SQRT_S:
                    x = frame[ins[2]]
                    frame[ins[1]] = _op_sqrt(x, positions[pc])
                    pc += 1
                    continue
                # RECIP_S
                x = frame[ins[2]]
                if type(x) is float and x != 0.0:
                    frame[ins[1]] = 1.0 / x
                else:
                    frame[ins[1]] = _op_recip(x, positions[pc])
                pc += 1
                continue
            # -- control flow -----------------------------------------------
            if op < LDX:
                if op == INC_JMP:
                    v = frame[ins[1]]
                    if type(v) is int:
                        frame[ins[1]] = v + ins[2]
                    else:
                        frame[ins[1]] = to_numbr(v, positions[pc]) + ins[2]
                    pc = ins[3]
                    continue
                if op == JMP:
                    pc = ins[1]
                    continue
                if op == JF:
                    v = frame[ins[1]]
                    if v is False:
                        pc = ins[2]
                    elif v is True or to_troof(v):
                        pc += 1
                    else:
                        pc = ins[2]
                    continue
                if op == JT:
                    v = frame[ins[1]]
                    if v is True:
                        pc = ins[2]
                    elif v is not False and to_troof(v):
                        pc = ins[2]
                    else:
                        pc += 1
                    continue
                if op == JEQ:
                    pc = ins[3] if equals(frame[ins[1]], frame[ins[2]]) else pc + 1
                    continue
                if op == BR_EQ_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x == y else pc + 1
                    else:
                        pc = ins[3] if equals(x, y) else pc + 1
                    continue
                if op == BR_EQ_SC:
                    x = frame[ins[1]]
                    tx = type(x)
                    if tx is int or tx is float:
                        pc = ins[3] if x == ins[2] else pc + 1
                    else:
                        pc = ins[3] if equals(x, ins[2]) else pc + 1
                    continue
                if op == BR_NE_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x != y else pc + 1
                    else:
                        pc = pc + 1 if equals(x, y) else ins[3]
                    continue
                if op == BR_NE_SC:
                    x = frame[ins[1]]
                    tx = type(x)
                    if tx is int or tx is float:
                        pc = ins[3] if x != ins[2] else pc + 1
                    else:
                        pc = pc + 1 if equals(x, ins[2]) else ins[3]
                    continue
                if op == BR_LT_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x < y else pc + 1
                    else:
                        pc = ins[3] if _op_lt(x, y, positions[pc]) else pc + 1
                    continue
                if op == BR_LT_SC:
                    x = frame[ins[1]]
                    tx = type(x)
                    if tx is int or tx is float:
                        pc = ins[3] if x < ins[2] else pc + 1
                    else:
                        pc = ins[3] if _op_lt(x, ins[2], positions[pc]) else pc + 1
                    continue
                if op == BR_LE_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x <= y else pc + 1
                    else:
                        pc = pc + 1 if _op_gt(x, y, positions[pc]) else ins[3]
                    continue
                if op == BR_LE_SC:
                    x = frame[ins[1]]
                    tx = type(x)
                    if tx is int or tx is float:
                        pc = ins[3] if x <= ins[2] else pc + 1
                    else:
                        pc = pc + 1 if _op_gt(x, ins[2], positions[pc]) else ins[3]
                    continue
                if op == BR_GT_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x > y else pc + 1
                    else:
                        pc = ins[3] if _op_gt(x, y, positions[pc]) else pc + 1
                    continue
                if op == BR_GT_SC:
                    x = frame[ins[1]]
                    tx = type(x)
                    if tx is int or tx is float:
                        pc = ins[3] if x > ins[2] else pc + 1
                    else:
                        pc = ins[3] if _op_gt(x, ins[2], positions[pc]) else pc + 1
                    continue
                if op == BR_GE_SS:
                    x = frame[ins[1]]
                    y = frame[ins[2]]
                    tx = type(x)
                    ty = type(y)
                    if (tx is int or tx is float) and (ty is int or ty is float):
                        pc = ins[3] if x >= y else pc + 1
                    else:
                        pc = pc + 1 if _op_lt(x, y, positions[pc]) else ins[3]
                    continue
                # BR_GE_SC
                x = frame[ins[1]]
                tx = type(x)
                if tx is int or tx is float:
                    pc = ins[3] if x >= ins[2] else pc + 1
                else:
                    pc = pc + 1 if _op_lt(x, ins[2], positions[pc]) else ins[3]
                continue
            # -- array / symmetric access ------------------------------------
            if op < ST_TYPED:
                if op == LDX:
                    i = frame[ins[3]]
                    if type(i) is not int:
                        i = to_numbr(i, positions[pc])
                    try:
                        frame[ins[1]] = frame[ins[2]].read(i)
                    except LolRuntimeError as exc:
                        raise LolRuntimeError(
                            f"{ins[4]}: {exc.message}", positions[pc]
                        ) from exc
                    pc += 1
                    continue
                if op == STX:
                    i = frame[ins[2]]
                    if type(i) is not int:
                        i = to_numbr(i, positions[pc])
                    m = ins[4]
                    v = frame[ins[3]]
                    tv = type(v)
                    et = m[1]
                    if not (
                        (tv is float and et is NUMBAR)
                        or (tv is int and et is NUMBR)
                    ):
                        v = coerce_static(v, et, m[0], positions[pc])
                    try:
                        frame[ins[1]].write(i, v)
                    except LolRuntimeError as exc:
                        raise LolRuntimeError(
                            f"{m[0]}: {exc.message}", positions[pc]
                        ) from exc
                    pc += 1
                    continue
                if op == SYM_LD:
                    e = caches[ins[3]]
                    if e is not None and e[0] == heap.version and fast:
                        cell = e[1]
                        frame[ins[1]] = cell.value if e[2] else cell.read()
                    else:
                        frame[ins[1]] = self._sym_ld_slow(caches, ins[2], ins[3])
                    pc += 1
                    continue
                if op == SYM_ST:
                    e = caches[ins[3]]
                    if e is not None and e[0] == heap.version and fast:
                        v = frame[ins[2]]
                        tv = type(v)
                        lt = e[3]
                        if (tv is int and lt is NUMBR) or (
                            tv is float and lt is NUMBAR
                        ):
                            if e[2]:
                                e[1].value = v
                            else:
                                e[1].write(v)
                            pc += 1
                            continue
                    self._sym_st_slow(
                        caches, ins[1], frame[ins[2]], ins[3], positions[pc]
                    )
                    pc += 1
                    continue
                if op == SYM_LDX:
                    i = frame[ins[3]]
                    if type(i) is not int:
                        i = to_numbr(i, positions[pc])
                    e = caches[ins[4]]
                    if (
                        e is not None
                        and e[0] == heap.version
                        and fast
                        and 0 <= i < e[3]
                    ):
                        v = e[1][i]
                        conv = e[2]
                        frame[ins[1]] = conv(v) if conv is not None else v
                    else:
                        frame[ins[1]] = self._sym_ldx_slow(
                            caches, ins[2], i, ins[4]
                        )
                    pc += 1
                    continue
                # SYM_STX
                i = frame[ins[2]]
                if type(i) is not int:
                    i = to_numbr(i, positions[pc])
                e = caches[ins[4]]
                if (
                    e is not None
                    and e[0] == heap.version
                    and fast
                    and 0 <= i < e[3]
                ):
                    v = frame[ins[3]]
                    tv = type(v)
                    lt = e[2]
                    if (tv is int and lt is NUMBR) or (
                        tv is float and lt is NUMBAR
                    ):
                        e[1][i] = v
                        pc += 1
                        continue
                self._sym_stx_slow(
                    caches, ins[1], i, frame[ins[3]], ins[4], positions[pc]
                )
                pc += 1
                continue
            # -- stores, coercions, misc -------------------------------------
            if op < HALT:
                if op == ST_TYPED:
                    v = frame[ins[2]]
                    m = ins[3]
                    dt = m[0]
                    tv = type(v)
                    if (tv is int and dt is NUMBR) or (
                        tv is float and dt is NUMBAR
                    ):
                        frame[ins[1]] = v
                    else:
                        frame[ins[1]] = coerce_static(v, dt, m[1], positions[pc])
                    pc += 1
                    continue
                if op == ST_DYN:
                    v = frame[ins[2]]
                    tv = type(v)
                    if (
                        tv is int
                        or tv is float
                        or tv is str
                        or tv is bool
                        or v is None
                        or is_scalar_value(v)
                    ):
                        frame[ins[1]] = v
                    else:
                        raise LolTypeError(
                            f"cannot assign an array value to scalar '{ins[3]}'",
                            positions[pc],
                        )
                    pc += 1
                    continue
                if op == COERCE:
                    m = ins[2]
                    v = frame[ins[1]]
                    dt = m[0]
                    tv = type(v)
                    if not (
                        (tv is int and dt is NUMBR)
                        or (tv is float and dt is NUMBAR)
                    ):
                        frame[ins[1]] = coerce_static(v, dt, m[1], positions[pc])
                    pc += 1
                    continue
                if op == BINOP:
                    frame[ins[1]] = ins[2](
                        frame[ins[3]], frame[ins[4]], positions[pc]
                    )
                    pc += 1
                    continue
                if op == BINOP_SC:
                    frame[ins[1]] = ins[2](frame[ins[3]], ins[4], positions[pc])
                    pc += 1
                    continue
                if op == BINOP_CS:
                    frame[ins[1]] = ins[2](ins[3], frame[ins[4]], positions[pc])
                    pc += 1
                    continue
                if op == UNOP:
                    frame[ins[1]] = ins[2](frame[ins[3]], positions[pc])
                    pc += 1
                    continue
                if op == LOAD_ME:
                    frame[ins[1]] = my_pe
                    pc += 1
                    continue
                if op == LOAD_NPES:
                    frame[ins[1]] = n_pes
                    pc += 1
                    continue
                if op == RESET:
                    frame[ins[1] : ins[2]] = ins[3]
                    pc += 1
                    continue
                if op == STEP:
                    s = self.steps + 1
                    self.steps = s
                    if max_steps is not None and s > max_steps:
                        raise LolRuntimeError(
                            f"program exceeded {max_steps} statement steps",
                            positions[pc],
                        )
                    pc += 1
                    continue
                if op == FLOPS:
                    ctx.add_flops(ins[1])
                    pc += 1
                    continue
                # LOOP_VEC
                if run_vec(self, frame, ins[1], positions[pc]):
                    self.vec_runs += 1
                    pc = ins[2]
                else:
                    self.vec_bails += 1
                    pc += 1
                continue
            # -- cold opcodes ------------------------------------------------
            if op == HALT:
                return None
            if op == RET:
                return frame[ins[1]]
            if op == RETC:
                return ins[1]
            # Hot subset of the "cold" ops, promoted inline: communication
            # and RNG dominate the short-loop workloads (ring, transpose,
            # pi, histogram), where the _HANDLERS call overhead shows.
            if op == BARRIER:
                ctx.barrier_all()
                pc += 1
                continue
            if op == GET:
                name = ins[2]
                frame[ins[1]] = ctx.get(
                    name, _require_target(self, name, positions[pc])
                )
                pc += 1
                continue
            if op == PUT_BARRIER:
                pos = positions[pc]
                name = ins[1]
                ireg = ins[3][0]
                if ireg is None:
                    pe = _require_target(self, name, pos)
                    ctx.put(
                        name, coerce_symmetric(ctx, name, frame[ins[2]], pos), pe
                    )
                else:
                    index = _as_index(frame[ireg], pos)
                    pe = _require_target(self, name, pos)
                    obj = ctx.world.heap.lookup(name)
                    ctx.put(
                        name,
                        coerce_element(frame[ins[2]], obj.lol_type, name, pos),
                        pe,
                        index=index,
                    )
                ctx.barrier_all()
                pc += 1
                continue
            if op == RANDOM:
                rng = ctx.rng
                frame[ins[1]] = (
                    rng.randrange(0, 2**31 - 1) if ins[2] == 0 else rng.random()
                )
                pc += 1
                continue
            if op == GETX:
                pos = positions[pc]
                name = ins[2]
                index = _as_index(frame[ins[3]], pos)
                frame[ins[1]] = ctx.get(
                    name, _require_target(self, name, pos), index=index
                )
                pc += 1
                continue
            if op == PUTX:
                pos = positions[pc]
                name = ins[1]
                index = _as_index(frame[ins[2]], pos)
                pe = _require_target(self, name, pos)
                obj = ctx.world.heap.lookup(name)
                ctx.put(
                    name,
                    coerce_element(frame[ins[3]], obj.lol_type, name, pos),
                    pe,
                    index=index,
                )
                pc += 1
                continue
            if op == PUT:
                pos = positions[pc]
                name = ins[1]
                pe = _require_target(self, name, pos)
                ctx.put(name, coerce_symmetric(ctx, name, frame[ins[2]], pos), pe)
                pc += 1
                continue
            if op == GET_BIN:
                fn, name, idx, remote_on_lhs, other, pos = ins[2]
                ov = frame[other[1]] if other[0] == "r" else other[1]
                if idx is None:
                    rv = ctx.get(name, _require_target(self, name, pos))
                else:
                    iv = frame[idx[1]] if idx[0] == "r" else idx[1]
                    index = iv if type(iv) is int else to_numbr(iv, pos)
                    rv = ctx.get(
                        name, _require_target(self, name, pos), index=index
                    )
                frame[ins[1]] = fn(rv, ov, pos) if remote_on_lhs else fn(ov, rv, pos)
                pc += 1
                continue
            if op == TXT_PUSH:
                pos = positions[pc]
                pe = to_numbr(frame[ins[1]], pos)
                if not 0 <= pe < n_pes:
                    raise LolParallelError(
                        f"TXT MAH BFF {pe}: PE out of range [0, {n_pes})", pos
                    )
                self.txt_saves.append(self.target_pe)
                self.target_pe = pe
                pc += 1
                continue
            if op == TXT_POP:
                self.target_pe = self.txt_saves.pop()
                pc += 1
                continue
            if op == CAST:
                frame[ins[1]] = cast_value(frame[ins[2]], ins[3][0], positions[pc])
                pc += 1
                continue
            pc = _HANDLERS[op](self, co, frame, caches, ins, pc)


# ---------------------------------------------------------------------------
# Cold-opcode handlers: fn(machine, co, frame, caches, ins, pc) -> next pc.
# ---------------------------------------------------------------------------


def _h_raise_break(m, co, frame, caches, ins, pc):
    raise _Break()


def _h_noloop(m, co, frame, caches, ins, pc):
    raise LolRuntimeError(
        f"loop '{ins[1]}' has no counter, no condition and no GTFO: "
        f"it would never terminate",
        co.positions[pc],
    )


def _h_raise_err(m, co, frame, caches, ins, pc):
    ins[1]()
    return pc + 1  # pragma: no cover - raisers always raise


def _h_raise_return(m, co, frame, caches, ins, pc):
    raise _Return(frame[ins[1]])


def _h_display(m, co, frame, caches, ins, pc):
    frame[ins[1]] = display_value(frame[ins[2]], co.positions[pc])
    return pc + 1


def _h_visible(m, co, frame, caches, ins, pc):
    out = []
    for p in ins[1]:
        out.append(p if type(p) is str else frame[p])
    m.ctx.emit("".join(out) + ins[2])
    return pc + 1


def _h_interp(m, co, frame, caches, ins, pc):
    out = []
    for p in ins[2]:
        out.append(p if type(p) is str else format_yarn(frame[p]))
    frame[ins[1]] = "".join(out)
    return pc + 1


def _h_nary(m, co, frame, caches, ins, pc):
    frame[ins[1]] = ins[2]([frame[r] for r in ins[3]], co.positions[pc])
    return pc + 1


def _h_cast(m, co, frame, caches, ins, pc):
    frame[ins[1]] = cast_value(frame[ins[2]], ins[3][0], co.positions[pc])
    return pc + 1


def _h_random(m, co, frame, caches, ins, pc):
    rng = m.ctx.rng
    frame[ins[1]] = rng.randrange(0, 2**31 - 1) if ins[2] == 0 else rng.random()
    return pc + 1


def _h_readline(m, co, frame, caches, ins, pc):
    frame[ins[1]] = m.ctx.read_line()
    return pc + 1


def _h_canhas(m, co, frame, caches, ins, pc):
    raw = ins[1]
    lib = raw.upper()
    if lib not in KNOWN_LIBRARIES:
        raise LolRuntimeError(f"CAN HAS {raw}?: unknown library", co.positions[pc])
    m.libraries.add(lib)
    return pc + 1


def _h_check_func(m, co, frame, caches, ins, pc):
    name = ins[2]
    f = m.functions.get(name)
    pos = co.positions[pc]
    if f is None:
        raise LolNameError(f"no function named '{name}'", pos)
    if f.n_params != ins[3]:
        raise LolRuntimeError(
            f"function '{name}' wants {f.n_params} arguments, got {ins[3]}",
            pos,
        )
    frame[ins[1]] = f
    return pc + 1


def _h_call(m, co, frame, caches, ins, pc):
    f = frame[ins[2]]
    callee = new_frame(f.co.n_slots)
    params = f.param_slots
    regs = ins[3]
    for i in range(len(regs)):
        callee[params[i]] = frame[regs[i]]
    saved = len(m.txt_saves)
    try:
        ret = m._exec(f.co, callee)
    finally:
        # A RET inside TXT MAH BFF skips the TXT_POPs; unwind them here
        # (the closure engine's try/finally per TXT statement).
        ts = m.txt_saves
        while len(ts) > saved:
            m.target_pe = ts.pop()
    frame[ins[1]] = ret
    return pc + 1


def _h_def(m, co, frame, caches, ins, pc):
    m.functions[ins[1]] = ins[2][0]
    return pc + 1


def _h_barrier(m, co, frame, caches, ins, pc):
    m.ctx.barrier_all()
    return pc + 1


def _lock_op(m, kind, name, frame, pos):
    ctx = m.ctx
    if not ctx.is_symmetric(name):
        raise LolParallelError(
            f"cannot lock '{name}': it is not a shared symmetric "
            f"variable (WE HAS A {name} ... AN IM SHARIN IT)",
            pos,
        )
    if kind == isa.LOCK_SET:
        ctx.set_lock(name)
    elif kind == isa.LOCK_TEST:
        frame[0] = ctx.test_lock(name)
    else:
        ctx.clear_lock(name)


def _h_lockop(m, co, frame, caches, ins, pc):
    _lock_op(m, ins[1], ins[2], frame, co.positions[pc])
    return pc + 1


def _h_lockopd(m, co, frame, caches, ins, pc):
    _lock_op(m, ins[1], format_yarn(frame[ins[2]]), frame, co.positions[pc])
    return pc + 1


def _h_txt_push(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    pe = to_numbr(frame[ins[1]], pos)
    if not 0 <= pe < m.ctx.n_pes:
        raise LolParallelError(
            f"TXT MAH BFF {pe}: PE out of range [0, {m.ctx.n_pes})", pos
        )
    m.txt_saves.append(m.target_pe)
    m.target_pe = pe
    return pc + 1


def _h_txt_pop(m, co, frame, caches, ins, pc):
    m.target_pe = m.txt_saves.pop()
    return pc + 1


def _h_get(m, co, frame, caches, ins, pc):
    name = ins[2]
    frame[ins[1]] = m.ctx.get(
        name, _require_target(m, name, co.positions[pc])
    )
    return pc + 1


def _h_getx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = ins[2]
    index = _as_index(frame[ins[3]], pos)
    frame[ins[1]] = m.ctx.get(name, _require_target(m, name, pos), index=index)
    return pc + 1


def _h_put(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = ins[1]
    pe = _require_target(m, name, pos)
    m.ctx.put(name, coerce_symmetric(m.ctx, name, frame[ins[2]], pos), pe)
    return pc + 1


def _h_putx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = ins[1]
    index = _as_index(frame[ins[2]], pos)
    pe = _require_target(m, name, pos)
    obj = m.ctx.world.heap.lookup(name)
    m.ctx.put(
        name,
        coerce_element(frame[ins[3]], obj.lol_type, name, pos),
        pe,
        index=index,
    )
    return pc + 1


def _h_put_barrier(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = ins[1]
    ireg = ins[3][0]
    if ireg is None:
        pe = _require_target(m, name, pos)
        m.ctx.put(name, coerce_symmetric(m.ctx, name, frame[ins[2]], pos), pe)
    else:
        index = _as_index(frame[ireg], pos)
        pe = _require_target(m, name, pos)
        obj = m.ctx.world.heap.lookup(name)
        m.ctx.put(
            name,
            coerce_element(frame[ins[2]], obj.lol_type, name, pos),
            pe,
            index=index,
        )
    m.ctx.barrier_all()
    return pc + 1


def _h_get_bin(m, co, frame, caches, ins, pc):
    fn, name, idx, remote_on_lhs, other, pos = ins[2]
    ov = frame[other[1]] if other[0] == "r" else other[1]
    ctx = m.ctx
    if idx is None:
        rv = ctx.get(name, _require_target(m, name, pos))
    else:
        iv = frame[idx[1]] if idx[0] == "r" else idx[1]
        index = iv if type(iv) is int else to_numbr(iv, pos)
        rv = ctx.get(name, _require_target(m, name, pos), index=index)
    frame[ins[1]] = fn(rv, ov, pos) if remote_on_lhs else fn(ov, rv, pos)
    return pc + 1


def _h_getd(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[2]])
    frame[ins[1]] = m.ctx.get(name, _require_target(m, name, pos))
    return pc + 1


def _h_getxd(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[2]])
    index = _as_index(frame[ins[3]], pos)
    frame[ins[1]] = m.ctx.get(name, _require_target(m, name, pos), index=index)
    return pc + 1


def _h_putd(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[1]])
    pe = _require_target(m, name, pos)
    m.ctx.put(name, coerce_symmetric(m.ctx, name, frame[ins[2]], pos), pe)
    return pc + 1


def _h_putxd(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[1]])
    index = _as_index(frame[ins[2]], pos)
    pe = _require_target(m, name, pos)
    obj = m.ctx.world.heap.lookup(name)
    m.ctx.put(
        name,
        coerce_element(frame[ins[3]], obj.lol_type, name, pos),
        pe,
        index=index,
    )
    return pc + 1


def _h_dyn_ld(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    frame[ins[1]] = _dyn_read(
        m, frame, ins[3][0], format_yarn(frame[ins[2]]), pos
    )
    return pc + 1


def _h_dyn_st(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    _dyn_write(
        m, frame, ins[3][0], format_yarn(frame[ins[1]]), frame[ins[2]], pos
    )
    return pc + 1


def _h_dyn_ldx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[2]])
    index = _as_index(frame[ins[3]], pos)
    frame[ins[1]] = _dyn_read_element(m, frame, ins[4][0], name, index, pos)
    return pc + 1


def _h_dyn_stx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = format_yarn(frame[ins[1]])
    index = _as_index(frame[ins[2]], pos)
    _dyn_write_element(m, frame, ins[4][0], name, index, frame[ins[3]], pos)
    return pc + 1


def _h_fb_ld(m, co, frame, caches, ins, pc):
    snap, name = ins[2]
    frame[ins[1]] = _dyn_read(m, frame, snap, name, co.positions[pc])
    return pc + 1


def _h_fb_st(m, co, frame, caches, ins, pc):
    snap, name = ins[2]
    _dyn_write(m, frame, snap, name, frame[ins[1]], co.positions[pc])
    return pc + 1


def _h_fb_ldx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    snap, name = ins[3]
    index = _as_index(frame[ins[2]], pos)
    frame[ins[1]] = _dyn_read_element(m, frame, snap, name, index, pos)
    return pc + 1


def _h_fb_stx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    snap, name = ins[3]
    index = _as_index(frame[ins[1]], pos)
    _dyn_write_element(m, frame, snap, name, index, frame[ins[2]], pos)
    return pc + 1


def _h_gld(m, co, frame, caches, ins, pc):
    v = m.gframe[ins[2]]
    if v is UNDECLARED:
        raise _undeclared(ins[3], co.positions[pc])
    frame[ins[1]] = v
    return pc + 1


def _h_gst(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    dt, name = ins[3]
    g = m.gframe
    if g[ins[1]] is UNDECLARED:
        raise _undeclared(name, pos)
    v = frame[ins[2]]
    if dt is not None:
        v = coerce_static(v, dt, name, pos)
    elif not is_scalar_value(v):
        raise LolTypeError(f"cannot assign an array value to scalar '{name}'", pos)
    g[ins[1]] = v
    return pc + 1


def _h_gldx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name = ins[4]
    cell = m.gframe[ins[2]]
    index = _as_index(frame[ins[3]], pos)
    try:
        frame[ins[1]] = cell.read(index)
    except LolRuntimeError as exc:
        raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc
    return pc + 1


def _h_gstx(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    elem_t, name = ins[4]
    cell = m.gframe[ins[1]]
    index = _as_index(frame[ins[2]], pos)
    value = coerce_static(frame[ins[3]], elem_t, name, pos)
    try:
        cell.write(index, value)
    except LolRuntimeError as exc:
        raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc
    return pc + 1


def _h_gchk(m, co, frame, caches, ins, pc):
    if m.gframe[ins[1]] is UNDECLARED:
        raise _undeclared(ins[2], co.positions[pc])
    return pc + 1


def _h_st_arr(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    cell = frame[ins[1]]
    if cell is UNDECLARED:
        raise _undeclared(ins[3], pos)
    write_whole_array(cell, frame[ins[2]], ins[3], pos)
    return pc + 1


def _h_gst_arr(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    cell = m.gframe[ins[1]]
    if cell is UNDECLARED:
        raise _undeclared(ins[3], pos)
    write_whole_array(cell, frame[ins[2]], ins[3], pos)
    return pc + 1


def _h_arrdecl(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    elem_t, name = ins[3]
    size = to_array_size(frame[ins[2]], pos)
    if size <= 0:
        raise LolRuntimeError(
            f"array '{name}' must have positive size, got {size}", pos
        )
    frame[ins[1]] = ArrayCell(elem_t, size)
    return pc + 1


def _h_symdecl(m, co, frame, caches, ins, pc):
    pos = co.positions[pc]
    name, declared, is_array, has_lock, size_co, init_co = ins[1]
    ctx = m.ctx
    if is_array:
        size = to_array_size(m._exec(size_co, m.gframe), pos)
        ctx.alloc_array(name, declared, size, has_lock=has_lock)
    else:
        ctx.alloc_scalar(name, declared, has_lock=has_lock)
    if init_co is not None:
        value = coerce_static(m._exec(init_co, m.gframe), declared, name, pos)
        ctx.local_write(name, value)
    return pc + 1


_HANDLERS: list = [None] * isa.N_OPCODES
for _code, _fn in {
    isa.RAISE_BREAK: _h_raise_break,
    isa.NOLOOP: _h_noloop,
    isa.RAISE_ERR: _h_raise_err,
    isa.RAISE_RETURN: _h_raise_return,
    isa.DISPLAY: _h_display,
    isa.VISIBLE: _h_visible,
    isa.INTERP: _h_interp,
    isa.NARY: _h_nary,
    isa.CAST: _h_cast,
    isa.RANDOM: _h_random,
    isa.READLINE: _h_readline,
    isa.CANHAS: _h_canhas,
    isa.CHECK_FUNC: _h_check_func,
    isa.CALL: _h_call,
    isa.DEF: _h_def,
    isa.BARRIER: _h_barrier,
    isa.LOCKOP: _h_lockop,
    isa.LOCKOPD: _h_lockopd,
    isa.TXT_PUSH: _h_txt_push,
    isa.TXT_POP: _h_txt_pop,
    isa.GET: _h_get,
    isa.GETX: _h_getx,
    isa.PUT: _h_put,
    isa.PUTX: _h_putx,
    isa.PUT_BARRIER: _h_put_barrier,
    isa.GET_BIN: _h_get_bin,
    isa.GETD: _h_getd,
    isa.GETXD: _h_getxd,
    isa.PUTD: _h_putd,
    isa.PUTXD: _h_putxd,
    isa.DYN_LD: _h_dyn_ld,
    isa.DYN_ST: _h_dyn_st,
    isa.DYN_LDX: _h_dyn_ldx,
    isa.DYN_STX: _h_dyn_stx,
    isa.FB_LD: _h_fb_ld,
    isa.FB_ST: _h_fb_st,
    isa.FB_LDX: _h_fb_ldx,
    isa.FB_STX: _h_fb_stx,
    isa.GLD: _h_gld,
    isa.GST: _h_gst,
    isa.GLDX: _h_gldx,
    isa.GSTX: _h_gstx,
    isa.GCHK: _h_gchk,
    isa.ST_ARR: _h_st_arr,
    isa.GST_ARR: _h_gst_arr,
    isa.ARRDECL: _h_arrdecl,
    isa.SYMDECL: _h_symdecl,
}.items():
    _HANDLERS[_code] = _fn
del _code, _fn
