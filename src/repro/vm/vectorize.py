"""Loop vectorization for the VM engine (the ``LOOP_VEC`` instruction).

:func:`try_vectorize` analyses one counted ``IM IN YR`` loop at compile
time.  When every statement of the body is a scalar declaration or an
assignment whose value is an affine/elementwise expression over the
loop counter, loop-invariant locals, and numpy-backed arrays, it
returns a :class:`VecPlan`: a small register program the machine
executes with numpy slice operations instead of ``n`` trips through the
dispatch loop.  Anything outside the model returns ``None`` and the
loop compiles scalar-only.

:func:`run_vec` executes a plan at runtime.  It is *guarded*: every
value-dependent precondition (integral trip counts, array bounds, int64
magnitudes, sqrt/recip domains, operand types) is checked **before any
state is mutated**; a failed guard returns ``False`` and the machine
falls through to the scalar loop, which reproduces exact tree-walker
semantics — including whatever error the guard was protecting against.
Commits are two-phase (compute everything, materialize copies, then
write), so a bail can never leave partial effects behind.

Bit-identity with the scalar engines is the design constraint, not an
aspiration:

* float64 ``+ - *`` and sqrt are IEEE correctly rounded in both numpy
  and CPython, and elementwise vector ops mirror the scalar expression
  tree one operation to one operation — nothing is ever reassociated;
* affine ``base + coeff*i`` algebra (which *does* reassociate) is kept
  exact by allowing only integer coefficients and validating integer
  bases at every runtime consumer;
* int64 arithmetic is exact under the ``2**30`` magnitude guards
  (products stay under ``2**60``, conversions under ``2**53``);
* reductions run as sequential Python folds over the real operator
  kernels (float addition is not associative);
* float -> NUMBR casts use numpy's C truncation, which is exactly
  ``to_numbr``'s ``int()``.
"""

from __future__ import annotations

import math

import numpy as np

from ..interp.env import UNDECLARED
from ..interp.values import (
    _op_add,
    _op_mul,
    _op_recip,
    _op_sqrt,
    _op_square,
    _op_sub,
)
from ..lang import ast
from ..lang.resolve import LOCAL, MISSING, SYMMETRIC
from ..lang.types import LolType, coerce_static, default_value, parse_type
from ..shmem.heap import ArrayCell

#: int64 magnitude bound for every integer vector (and every scalar fed
#: into one).  Keeps products exact in int64 and int->float casts exact.
_MAXI = 1 << 30
#: trip-count cap: bounds transient memory (~32 MiB of float64).
_CAP = 1 << 22

_NUMBR = LolType.NUMBR
_NUMBAR = LolType.NUMBAR

_SBIN = {"add": _op_add, "sub": _op_sub, "mul": _op_mul}
_SUN = {"square": _op_square, "sqrt": _op_sqrt, "recip": _op_recip}


class _Bail(Exception):
    """Internal: this loop (or this execution of it) must stay scalar."""


class VecPlan:
    """A compiled vector execution plan for one counted loop.

    ``limit_prog`` computes the trip-count operand (invariant scalars
    only); ``prog`` computes every per-iteration value as length-``n``
    vectors or invariant scalars; ``commits`` describes the writes
    applied after every guard has passed.
    """

    __slots__ = (
        "mode",
        "limit",
        "limit_prog",
        "prog",
        "commits",
        "n_regs",
        "cslot",
    )

    def __init__(self, mode, limit, limit_prog, prog, commits, n_regs, cslot):
        self.mode = mode  # "eq" (TIL BOTH SAEM) | "lt" (WILE SMALLR)
        self.limit = limit
        self.limit_prog = limit_prog
        self.prog = prog
        self.commits = commits
        self.n_regs = n_regs
        self.cslot = cslot

    def __repr__(self) -> str:  # deterministic — appears in loldis output
        return (
            f"vec({self.mode}, ops={len(self.limit_prog) + len(self.prog)}, "
            f"commits={len(self.commits)}, regs={self.n_regs})"
        )


class _Arr:
    """Per-array analysis state: hazard keys and pending writes."""

    __slots__ = ("reg", "kind", "elem", "reads", "read1", "writes", "folded")

    def __init__(self, reg: int, kind: str, elem: LolType) -> None:
        self.reg = reg
        self.kind = kind  # "i" | "f" — int64 / float64 backing
        self.elem = elem
        self.reads: dict = {}  # slice-read key -> reg
        self.read1: dict = {}  # invariant-element-read key -> reg
        self.writes: dict = {}  # key -> (base_op, coeff, symval) | "fold"
        self.folded = False


class _Analyzer:
    """Symbolic walk of one loop body.

    Symbolic values (``symval``):

    * ``("c", v)`` — compile-time constant;
    * ``("r", reg)`` — loop-invariant runtime scalar;
    * ``("v", reg)`` — length-``n`` vector, element per iteration;
    * ``("aff", base, coeff)`` — ``base + coeff*i`` with integer
      ``coeff`` and ``base`` an operand ``("c", int)`` or ``("r", reg)``
      (a runtime base is validated as ``int`` by every consumer whose
      exactness depends on it).

    Raises :class:`_Bail` on the first construct outside the model.
    """

    def __init__(self, scope, compiler, cslot: int) -> None:
        self.scope = scope
        self.compiler = compiler
        self.cslot = cslot
        self.prog: list = []
        self.n_regs = 0
        self.slot_regs: dict = {}  # slot -> reg, memoized invariant reads
        self.me_reg = None
        self.np_reg = None
        self.sym_regs: dict = {}  # symmetric scalar name -> reg
        self.arr_regs: dict = {}  # aref -> _Arr
        self.env: dict = {}  # slot -> symval assigned this iteration
        self.folds: dict = {}  # slot -> fold reg (accumulators)
        self.inv_reads: set = set()  # slots read as loop-invariant
        self.frozen: set = set()  # slots the body must not assign
        self.decl_seen: set = set()  # slots declared by the body so far
        self.decl_types: dict = {}  # decl name -> LolType | None
        self.commits: list = []
        self.in_limit = False

    # ------------------------------------------------------------------
    # helpers

    def _reg(self) -> int:
        r = self.n_regs
        self.n_regs += 1
        return r

    def _emit(self, op: tuple) -> None:
        self.prog.append(op)

    @staticmethod
    def _opnd(sym):
        """symval -> runtime operand (vectors/scalars share ``("r", reg)``)."""
        k = sym[0]
        if k == "c":
            return ("c", sym[1])
        if k in ("r", "v"):
            return ("r", sym[1])
        raise _Bail

    @staticmethod
    def _is_int(v) -> bool:
        return type(v) is int  # bool deliberately excluded

    def _is_counter(self, node) -> bool:
        if not isinstance(node, ast.VarRef) or node.qualifier == "UR":
            return False
        info = self.scope.lookup(node.name)
        return (
            info is not None
            and info.kind == LOCAL
            and not info.is_array
            and info.slot == self.cslot
        )

    # ------------------------------------------------------------------
    # entry point

    def build(self, stmt: ast.Loop) -> VecPlan:
        cond = stmt.cond
        if not isinstance(cond, ast.BinOp):
            raise _Bail
        if stmt.cond_kind == "TIL" and cond.op == "eq":
            if self._is_counter(cond.lhs):
                limit_node = cond.rhs
            elif self._is_counter(cond.rhs):
                limit_node = cond.lhs
            else:
                raise _Bail
            mode = "eq"
        elif (
            stmt.cond_kind == "WILE"
            and cond.op == "lt"
            and self._is_counter(cond.lhs)
        ):
            limit_node = cond.rhs
            mode = "lt"
        else:
            raise _Bail
        # The scalar loop re-evaluates the condition every iteration, so
        # the limit must be invariant: constants, plain local scalars,
        # ME / MAH FRENZ, and + - * over those.  Every slot it reads is
        # frozen against body writes.
        self.in_limit = True
        lim = self._expr(limit_node)
        self.in_limit = False
        if lim[0] not in ("c", "r"):
            raise _Bail
        limit_prog = self.prog
        self.prog = []
        self.frozen = set(self.slot_regs) | {self.cslot}
        for s in stmt.body:
            self._stmt(s)
        self._finalize_array_commits()
        for slot in sorted(self.env):
            self.commits.append(("set", slot, self._commit_src(self.env[slot])))
        return VecPlan(
            mode,
            self._opnd(lim),
            tuple(limit_prog),
            tuple(self.prog),
            tuple(self.commits),
            self.n_regs,
            self.cslot,
        )

    def _commit_src(self, sym):
        k = sym[0]
        if k == "c":
            return ("c", sym[1])
        if k == "r":
            return ("r", sym[1])
        if k == "v":
            return ("last", sym[1])
        return ("afflast", sym[1], sym[2])  # base + coeff*(n-1)

    def _finalize_array_commits(self) -> None:
        for aref in sorted(self.arr_regs):
            st = self.arr_regs[aref]
            for key, pend in st.writes.items():
                if pend == "fold":
                    continue  # the fold already appended its ("w1", ...)
                base_op, coeff, sym = pend
                if coeff == 0:
                    self.commits.append(
                        ("w1", st.reg, base_op, self._commit_src(sym))
                    )
                    continue
                if sym[0] == "aff":
                    sym = ("v", self._materialize(sym))
                self.commits.append(
                    ("wslice", st.reg, base_op, coeff, self._opnd(sym))
                )

    # ------------------------------------------------------------------
    # statements

    def _stmt(self, s) -> None:
        t = type(s)
        if t is ast.Assign:
            self._assign(s)
        elif t is ast.VarDecl:
            self._decl(s)
        else:
            raise _Bail

    def _decl(self, s: ast.VarDecl) -> None:
        if s.scope != "I" or s.is_array or s.shared_lock:
            raise _Bail
        # parse_type errors propagate: the scalar compile of this decl
        # raises the identical compile-time error.
        declared = parse_type(s.static_type, s.pos) if s.static_type else None
        if declared is not None and declared not in (_NUMBR, _NUMBAR):
            raise _Bail
        info = self.scope.lookup(s.name)
        if info is None or info.kind != LOCAL or info.is_array:
            raise _Bail
        slot = info.slot
        if slot in self.frozen or slot in self.folds or slot in self.inv_reads:
            raise _Bail
        prev_t = self.decl_types.get(s.name, info.static_type)
        if prev_t is not declared:
            raise _Bail  # re-declaration with a new type moves the slot
        self.decl_types[s.name] = declared
        if s.init is None:
            sym = ("c", default_value(declared) if declared else None)
        else:
            sym = self._expr(s.init)
            if slot in self.inv_reads:
                raise _Bail  # the initializer read the old binding
            if declared is not None:
                sym = self._coerce(sym, declared, s.name)
        self.env[slot] = sym
        self.decl_seen.add(slot)

    def _assign(self, s: ast.Assign) -> None:
        target = s.target
        if isinstance(target, ast.VarRef):
            self._assign_slot(s, target)
        elif isinstance(target, ast.Index):
            self._assign_element(s, target)
        else:
            raise _Bail  # SRS computed names stay scalar

    def _assign_slot(self, s: ast.Assign, target: ast.VarRef) -> None:
        if target.qualifier == "UR":
            raise _Bail
        info = self.scope.lookup(target.name)
        if info is None or info.kind != LOCAL or info.is_array:
            raise _Bail
        slot = info.slot
        if slot in self.frozen or slot in self.folds:
            raise _Bail
        if info.fallback is not None and slot not in self.decl_seen:
            raise _Bail  # pre-declaration store hits the outer binding
        st_type = info.static_type
        if st_type is not None and st_type not in (_NUMBR, _NUMBAR):
            raise _Bail
        value = s.value
        # Recurrence accumulator ``s R SUM OF s AN <v>`` with ``s``
        # otherwise untouched: a sequential fold over the operator
        # kernel, preserving float non-associativity bit for bit.
        if (
            isinstance(value, ast.BinOp)
            and value.op in _SBIN
            and isinstance(value.lhs, ast.VarRef)
            and value.lhs.qualifier != "UR"
            and slot not in self.env
            and slot not in self.inv_reads
            and info.fallback is None
        ):
            lhs_info = self.scope.lookup(value.lhs.name)
            if (
                lhs_info is not None
                and lhs_info.kind == LOCAL
                and not lhs_info.is_array
                and lhs_info.slot == slot
            ):
                opnd = self._fold_operand(value.rhs, slot)
                coerce = ("static", st_type, target.name) if st_type else None
                reg = self._reg()
                self._emit(
                    ("fold", reg, value.op, ("slot", slot), opnd, coerce)
                )
                self.folds[slot] = reg
                self.commits.append(("set", slot, ("r", reg)))
                return
        sym = self._expr(value)
        if slot in self.inv_reads:
            raise _Bail  # read-before-write: a cross-iteration recurrence
        if st_type is not None:
            sym = self._coerce(sym, st_type, target.name)
        self.env[slot] = sym

    def _fold_operand(self, node, acc_slot: int):
        sym = self._expr(node)
        if acc_slot in self.inv_reads:
            raise _Bail  # the operand itself read the accumulator
        if sym[0] == "aff":
            sym = ("v", self._materialize(sym))
        return self._opnd(sym)

    def _assign_element(self, s: ast.Assign, target: ast.Index) -> None:
        st = self._array(target.base)
        if st.folded:
            raise _Bail
        base_op, coeff = self._aff_index(target.index)
        key = (coeff, base_op)
        value = s.value
        # Element accumulator at an invariant index (nbody's force
        # accumulation): ``A'Z k R SUM OF A'Z k AN <v>``.
        if (
            coeff == 0
            and isinstance(value, ast.BinOp)
            and value.op in _SBIN
            and isinstance(value.lhs, ast.Index)
            and self._same_element(value.lhs, target, st, key)
        ):
            opnd = self._fold_operand(value.rhs, -1)
            # Any access to this array recorded so far (including ones
            # the operand just made) could observe the evolving element
            # mid-loop, so the fold requires a completely private array.
            if not st.reads and not st.read1 and not st.writes:
                reg = self._reg()
                self._emit(
                    (
                        "fold",
                        reg,
                        value.op,
                        ("elem", st.reg, base_op),
                        opnd,
                        ("static", st.elem, "<element>"),
                    )
                )
                st.folded = True
                st.writes[key] = "fold"
                self.commits.append(("w1", st.reg, base_op, ("r", reg)))
                return
            raise _Bail
        # Evaluate the value FIRST: reads it makes on this array are
        # hazards of this write too, and must be visible to the checks.
        sym = self._coerce(self._expr(value), st.elem, "<element>")
        for k in st.writes:
            if k != key:
                raise _Bail  # two write streams could interleave
        for k in st.reads:
            if k != key:
                raise _Bail  # earlier iterations' writes feed that read
        if st.read1:
            raise _Bail  # hoisted element read vs. an evolving array
        if coeff == 0 and st.reads:
            raise _Bail  # slice read of an element overwritten each trip
        st.writes[key] = (base_op, coeff, sym)

    def _same_element(self, read: ast.Index, write: ast.Index, st, key) -> bool:
        base = read.base
        wbase = write.base
        if (
            not isinstance(base, ast.VarRef)
            or base.qualifier == "UR"
            or not isinstance(wbase, ast.VarRef)
            or base.name != wbase.name
        ):
            return False
        if self._array(base) is not st:
            return False
        rbase, rcoeff = self._aff_index(read.index)
        return (rcoeff, rbase) == key

    # ------------------------------------------------------------------
    # expressions

    def _expr(self, node):
        t = type(node)
        if t is ast.VarRef:
            return self._read_var(node)
        if t is ast.Index:
            if self.in_limit:
                raise _Bail
            return self._read_element(node)
        if t is ast.BinOp:
            if node.op not in _SBIN:
                raise _Bail
            a = self._expr(node.lhs)
            b = self._expr(node.rhs)
            return self._bin(node.op, a, b)
        if t is ast.UnaryOp:
            if node.op not in _SUN or self.in_limit:
                raise _Bail
            return self._un(node.op, self._expr(node.operand))
        if t is ast.IntLit or t is ast.FloatLit or t is ast.TroofLit:
            return ("c", node.value)
        if t is ast.NoobLit:
            return ("c", None)
        if t is ast.StringLit:
            if node.is_plain():
                return ("c", node.plain_text())
            raise _Bail
        if t is ast.ItRef:
            return self._read_slot(0, None)
        if t is ast.MeExpr:
            if self.me_reg is None:
                self.me_reg = self._reg()
                self._emit(("me", self.me_reg))
            return ("r", self.me_reg)
        if t is ast.FrenzExpr:
            if self.np_reg is None:
                self.np_reg = self._reg()
                self._emit(("np", self.np_reg))
            return ("r", self.np_reg)
        raise _Bail  # RandomExpr, casts, calls, SRS, n-ary: stay scalar

    def _read_var(self, node: ast.VarRef):
        if node.qualifier == "UR":
            raise _Bail
        info = self.scope.lookup(node.name)
        if info is None or info.kind == MISSING:
            raise _Bail
        if info.kind == SYMMETRIC:
            # One hoisted read of the own-PE cell standing for n reads is
            # a valid interleaving (run_vec requires the race detector
            # off, and symmetric *writes* always bail).  In the limit
            # position the read is hoisted across the whole loop, which
            # is only sound when no peer can store to the symbol: the
            # static analyzer proves that (facts.remote_unwritten).
            if info.is_array:
                raise _Bail
            if self.in_limit and (
                node.name not in self.compiler.facts.remote_unwritten
            ):
                raise _Bail
            reg = self.sym_regs.get(node.name)
            if reg is None:
                reg = self._reg()
                self._emit(("symrd", reg, node.name))
                self.sym_regs[node.name] = reg
            return ("r", reg)
        if info.kind != LOCAL or info.is_array:
            raise _Bail  # function-frame globals / whole arrays: scalar
        if info.slot == self.cslot:
            if self.in_limit:
                raise _Bail
            return ("aff", ("c", 0), 1)
        return self._read_slot(info.slot, info)

    def _read_slot(self, slot: int, info):
        if slot in self.folds:
            raise _Bail
        sym = self.env.get(slot)
        if sym is not None:
            return sym
        if info is not None and info.fallback is not None:
            raise _Bail  # value depends on whether the decl ran yet
        reg = self.slot_regs.get(slot)
        if reg is None:
            reg = self._reg()
            self._emit(("slot", reg, slot))
            self.slot_regs[slot] = reg
        self.inv_reads.add(slot)
        return ("r", reg)

    def _array(self, base) -> _Arr:
        if not isinstance(base, ast.VarRef) or base.qualifier == "UR":
            raise _Bail
        info = self.scope.lookup(base.name)
        if info is None or info.kind == MISSING:
            raise _Bail
        if info.kind == SYMMETRIC:
            if not info.is_array:
                raise _Bail
            aref = ("sym", base.name)
            elem = info.static_type
        elif info.kind == LOCAL and info.is_array and info.fallback is None:
            aref = ("slot", info.slot)
            elem = info.static_type or _NUMBAR  # dynamic arrays are NUMBAR
        else:
            raise _Bail
        st = self.arr_regs.get(aref)
        if st is None:
            if elem is _NUMBR:
                kind = "i"
            elif elem is _NUMBAR:
                kind = "f"
            else:
                raise _Bail  # TROOF/YARN arrays stay scalar
            reg = self._reg()
            self._emit(("arr", reg, aref[0], aref[1], kind))
            st = _Arr(reg, kind, elem)
            self.arr_regs[aref] = st
        return st

    def _aff_index(self, node):
        """Index expression -> ``(base_operand, coeff)``, integer coeff."""
        sym = self._expr(node)
        k = sym[0]
        if k == "c":
            if type(sym[1]) is not int:
                raise _Bail
            return ("c", sym[1]), 0
        if k == "r":
            return ("r", sym[1]), 0
        if k == "aff" and sym[2] >= 1:
            return sym[1], sym[2]
        raise _Bail  # data-dependent (gather/scatter) indexing: scalar

    def _read_element(self, node: ast.Index):
        st = self._array(node.base)
        if st.folded:
            raise _Bail
        base_op, coeff = self._aff_index(node.index)
        key = (coeff, base_op)
        pend = st.writes.get(key)
        if pend is not None:
            if pend == "fold":
                raise _Bail
            return pend[2]  # same-iteration read-after-write, coerced
        for k in st.writes:
            if k != key:
                raise _Bail
        if coeff == 0:
            reg = st.read1.get(key)
            if reg is None:
                reg = self._reg()
                self._emit(("read1", reg, st.reg, base_op))
                st.read1[key] = reg
            return ("r", reg)
        reg = st.reads.get(key)
        if reg is None:
            reg = self._reg()
            self._emit(("read", reg, st.reg, base_op, coeff))
            st.reads[key] = reg
        return ("v", reg)

    # ------------------------------------------------------------------
    # symbolic arithmetic

    def _materialize(self, aff) -> int:
        """aff -> iota vector register (runtime-validates an int base)."""
        reg = self._reg()
        self._emit(("iota", reg, aff[1], aff[2]))
        return reg

    def _base_add(self, base, k: int):
        if base[0] == "c":
            return ("c", base[1] + k)
        if k == 0:
            return base
        reg = self._reg()
        self._emit(("sbin", reg, "add", base, ("c", k)))
        return ("r", reg)

    def _bin(self, op: str, a, b):
        ka, kb = a[0], b[0]
        if ka == "c" and kb == "c":
            try:
                return ("c", _SBIN[op](a[1], b[1], None))
            except Exception as exc:  # noqa: BLE001 — let scalar raise it
                raise _Bail from exc
        if ka == "aff" or kb == "aff":
            sym = self._bin_aff(op, a, b)
            if sym is not None:
                return sym
            if ka == "aff":
                a = ("v", self._materialize(a))
            if kb == "aff":
                b = ("v", self._materialize(b))
            ka, kb = a[0], b[0]
        if ka != "v" and kb != "v":
            reg = self._reg()
            self._emit(("sbin", reg, op, self._opnd(a), self._opnd(b)))
            return ("r", reg)
        if (ka == "c" and not _numeric(a[1])) or (
            kb == "c" and not _numeric(b[1])
        ):
            raise _Bail  # YARN/TROOF operands coerce per element: scalar
        reg = self._reg()
        self._emit(("bin", reg, op, self._opnd(a), self._opnd(b)))
        return ("v", reg)

    def _bin_aff(self, op: str, a, b):
        """Affine algebra; ``None`` means materialize and go elementwise.

        Reassociating is only exact for integers, so every rewrite here
        either stays in compile-time int constants or lands in a base
        register whose downstream consumers (iota, slice bases, afflast)
        validate ``int`` at runtime and bail on floats.
        """
        if a[0] == "aff" and b[0] == "aff":
            if op == "mul":
                return None
            base = self._base_combine(op, a[1], b[1])
            coeff = a[2] + b[2] if op == "add" else a[2] - b[2]
            return ("aff", base, coeff)
        if a[0] == "aff" and b[0] == "c" and self._is_int(b[1]):
            if op == "add":
                return ("aff", self._base_add(a[1], b[1]), a[2])
            if op == "sub":
                return ("aff", self._base_add(a[1], -b[1]), a[2])
            base = a[1]  # mul: (base + c*i) * k = base*k + (c*k)*i
            if base[0] == "c":
                return ("aff", ("c", base[1] * b[1]), a[2] * b[1])
            reg = self._reg()
            self._emit(("sbin", reg, "mul", base, ("c", b[1])))
            return ("aff", ("r", reg), a[2] * b[1])
        if b[0] == "aff" and a[0] == "c" and self._is_int(a[1]):
            if op == "add":
                return ("aff", self._base_add(b[1], a[1]), b[2])
            if op == "sub":  # k - (base + c*i) = (k - base) - c*i
                base = b[1]
                if base[0] == "c":
                    nbase = ("c", a[1] - base[1])
                else:
                    reg = self._reg()
                    self._emit(("sbin", reg, "sub", ("c", a[1]), base))
                    nbase = ("r", reg)
                return ("aff", nbase, -b[2])
            base = b[1]  # mul
            if base[0] == "c":
                return ("aff", ("c", a[1] * base[1]), a[1] * b[2])
            reg = self._reg()
            self._emit(("sbin", reg, "mul", ("c", a[1]), base))
            return ("aff", ("r", reg), a[1] * b[2])
        # Runtime-scalar add/sub keeps affinity (heat2d's row*cols + c).
        if a[0] == "aff" and b[0] == "r" and op in ("add", "sub"):
            reg = self._reg()
            self._emit(("sbin", reg, op, a[1], ("r", b[1])))
            return ("aff", ("r", reg), a[2])
        if b[0] == "aff" and a[0] == "r" and op == "add":
            reg = self._reg()
            self._emit(("sbin", reg, "add", ("r", a[1]), b[1]))
            return ("aff", ("r", reg), b[2])
        return None

    def _base_combine(self, op: str, x, y):
        if x[0] == "c" and y[0] == "c":
            return ("c", x[1] + y[1] if op == "add" else x[1] - y[1])
        reg = self._reg()
        self._emit(("sbin", reg, op, x, y))
        return ("r", reg)

    def _un(self, op: str, a):
        k = a[0]
        if k == "c":
            try:
                return ("c", _SUN[op](a[1], None))
            except Exception as exc:  # noqa: BLE001 — let scalar raise it
                raise _Bail from exc
        if k == "r":
            reg = self._reg()
            self._emit(("sun", reg, op, ("r", a[1])))
            return ("r", reg)
        if k == "aff":
            a = ("v", self._materialize(a))
        reg = self._reg()
        self._emit(("un", reg, op, a[1]))
        return ("v", reg)

    def _coerce(self, sym, declared: LolType, name: str):
        """Static-type store coercion (``ITZ SRSLY A`` / array elements)."""
        k = sym[0]
        if k == "c":
            try:
                return ("c", coerce_static(sym[1], declared, name, None))
            except Exception as exc:  # noqa: BLE001 — let scalar raise it
                raise _Bail from exc
        if k == "r":
            reg = self._reg()
            self._emit(("scast", reg, ("r", sym[1]), declared, name))
            return ("r", reg)
        if k == "aff":
            if declared is _NUMBR and sym[1][0] == "c":
                return sym  # provably integer already
            sym = ("v", self._materialize(sym))
        reg = self._reg()
        self._emit(("cast", reg, sym[1], "i" if declared is _NUMBR else "f"))
        return ("v", reg)


def _numeric(v) -> bool:
    t = type(v)
    return t is int or t is float


def try_vectorize(stmt: ast.Loop, scope, compiler, cslot: int):
    """Return a :class:`VecPlan` for ``stmt``, or ``None`` to stay scalar.

    Eligible loops are ``IM IN YR .. UPPIN YR v TIL BOTH SAEM v AN
    <inv>`` (or ``WILE SMALLR v AN <inv>``) whose bodies contain only
    scalar declarations and assignments inside the affine/elementwise
    model.  Called at compile time with the loop's scope pushed and the
    counter (slot ``cslot``) plus body declarations pre-declared; the
    analysis never mutates ``scope``.
    """
    if cslot < 0 or stmt.op != "UPPIN" or stmt.cond is None:
        return None
    try:
        return _Analyzer(scope, compiler, cslot).build(stmt)
    except _Bail:
        return None


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


def _val(operand, regs):
    return regs[operand[1]] if operand[0] == "r" else operand[1]


def _int_guard(v: np.ndarray) -> np.ndarray:
    if v.dtype.kind == "i" and (
        int(v.max()) > _MAXI or int(v.min()) < -_MAXI
    ):
        raise _Bail
    return v


def _scalar_num(v):
    t = type(v)
    if t is float:
        return v
    if t is int and -_MAXI <= v <= _MAXI:
        return v
    raise _Bail


def run_vec(m, frame, plan: VecPlan, pos) -> bool:
    """Execute ``plan``; True = loop done, False = run the scalar loop."""
    if not m.fast_sym:
        return False  # the race detector must observe every access
    try:
        return _run(m, frame, plan)
    except Exception:  # noqa: BLE001 — any guard failure stays scalar
        return False


def _run(m, frame, plan: VecPlan) -> bool:
    heap = m.heap
    my_pe = m.ctx.my_pe
    n_pes = m.ctx.n_pes
    regs: list = [None] * plan.n_regs
    for op in plan.limit_prog:
        _exec(op, regs, frame, 0, heap, my_pe, n_pes)
    lim = _val(plan.limit, regs)
    tl = type(lim)
    if plan.mode == "eq":
        # BOTH SAEM compares int/float by value, so an integral float
        # limit terminates the scalar loop too; any other limit never
        # matches the ascending int counter -> preserve the scalar
        # infinite loop by bailing.
        if tl is int:
            n = lim
        elif tl is float and math.isfinite(lim) and lim.is_integer():
            n = int(lim)
        else:
            raise _Bail
        if n < 0:
            raise _Bail
    else:  # "lt": n = first i with not (i < lim)
        if tl is int:
            n = lim if lim > 0 else 0
        elif tl is float:
            # NaN: lim > 0 is False -> 0 trips, same as the scalar test.
            # +inf: math.ceil raises -> bail -> scalar infinite loop.
            n = math.ceil(lim) if lim > 0 else 0
        else:
            raise _Bail
    if n == 0:
        frame[plan.cslot] = 0
        return True
    if n > _CAP:
        raise _Bail
    for op in plan.prog:
        _exec(op, regs, frame, n, heap, my_pe, n_pes)
    # Two-phase commit.  Validate every target and materialize every
    # source (copying ndarray views) before the first write: after this
    # point nothing can raise, and before it nothing has been mutated.
    actions = []
    for c in plan.commits:
        tag = c[0]
        if tag == "set":
            actions.append((None, frame, c[1], _commit_val(c[2], regs, n)))
        elif tag == "wslice":
            data = regs[c[1]]
            b = _val(c[2], regs)
            if type(b) is not int:
                raise _Bail
            coeff = c[3]
            end = b + coeff * (n - 1)
            if b < 0 or end >= data.shape[0]:
                raise _Bail
            src = _val(c[4], regs)
            if isinstance(src, np.ndarray):
                src = src.copy()  # views may alias a committed target
            elif type(src) is int:
                if abs(src) > _MAXI:
                    raise _Bail  # int64 store could overflow at apply
            elif type(src) is not float:
                raise _Bail
            actions.append((None, data, slice(b, end + 1, coeff), src))
        else:  # "w1"
            data = regs[c[1]]
            b = _val(c[2], regs)
            if type(b) is not int or b < 0 or b >= data.shape[0]:
                raise _Bail
            v = _commit_val(c[3], regs, n)
            if type(v) is int:
                if abs(v) > _MAXI:
                    raise _Bail
            elif type(v) is not float:
                raise _Bail
            actions.append((None, data, b, v))
    for _, target, where, v in actions:
        target[where] = v
    frame[plan.cslot] = n
    return True


def _commit_val(spec, regs, n: int):
    tag = spec[0]
    if tag == "c":
        return spec[1]
    if tag == "r":
        return regs[spec[1]]
    if tag == "last":
        return regs[spec[1]][-1].item()
    # "afflast": the final iteration's value as the scalar engine would
    # compute it — one add on the invariant base.  Exactness of the
    # reassociated coeff*(n-1) needs integers, so floats bail.
    b = _val(spec[1], regs)
    if type(b) is not int:
        raise _Bail
    return b + spec[2] * (n - 1)


def _exec(op, regs, frame, n, heap, my_pe, n_pes) -> None:
    tag = op[0]
    if tag == "bin":
        a = _val(op[3], regs)
        b = _val(op[4], regs)
        if not isinstance(a, np.ndarray):
            a = _scalar_num(a)
        if not isinstance(b, np.ndarray):
            b = _scalar_num(b)
        kind = op[2]
        if kind == "add":
            r = a + b
        elif kind == "sub":
            r = a - b
        else:
            r = a * b
        regs[op[1]] = _int_guard(r)
    elif tag == "read":
        data = regs[op[2]]
        b = _val(op[3], regs)
        if type(b) is not int:
            raise _Bail
        coeff = op[4]
        end = b + coeff * (n - 1)
        if b < 0 or end >= data.shape[0]:
            raise _Bail
        regs[op[1]] = _int_guard(data[b : end + 1 : coeff])
    elif tag == "slot":
        v = frame[op[2]]
        if v is UNDECLARED:
            raise _Bail
        regs[op[1]] = v
    elif tag == "un":
        v = regs[op[3]]
        kind = op[2]
        if kind == "square":
            regs[op[1]] = _int_guard(v * v)
        else:
            if v.dtype.kind == "i":
                v = v.astype(np.float64)  # exact under the int guard
            if kind == "sqrt":
                if bool((v < 0.0).any()):
                    raise _Bail  # scalar raises UNSQUAR OF
                regs[op[1]] = np.sqrt(v)
            else:  # recip
                if bool((v == 0.0).any()):
                    raise _Bail  # scalar raises FLIP OF
                regs[op[1]] = 1.0 / v
    elif tag == "fold":
        _, dst, kind, init, opnd, coerce = op
        if init[0] == "slot":
            acc = frame[init[1]]
            if acc is UNDECLARED:
                raise _Bail
        else:  # ("elem", arr_reg, base_op)
            data = regs[init[1]]
            b = _val(init[2], regs)
            if type(b) is not int or b < 0 or b >= data.shape[0]:
                raise _Bail
            v = data[b]
            acc = int(v) if data.dtype.kind == "i" else float(v)
        x = _val(opnd, regs)
        xs = x.tolist() if isinstance(x, np.ndarray) else [x] * n
        fn = _SBIN[kind]
        if coerce is None:
            for item in xs:
                acc = fn(acc, item, None)
        else:
            ct, nm = coerce[1], coerce[2]
            for item in xs:
                acc = coerce_static(fn(acc, item, None), ct, nm, None)
        regs[dst] = acc
    elif tag == "iota":
        b = _val(op[2], regs)
        if type(b) is not int:
            raise _Bail
        coeff = op[3]
        last = b + coeff * (n - 1)
        if not (-_MAXI <= b <= _MAXI and -_MAXI <= last <= _MAXI):
            raise _Bail
        regs[op[1]] = np.arange(n, dtype=np.int64) * coeff + b
    elif tag == "sbin":
        regs[op[1]] = _SBIN[op[2]](_val(op[3], regs), _val(op[4], regs), None)
    elif tag == "cast":
        v = regs[op[2]]
        if op[3] == "i":
            if v.dtype.kind == "f":
                if not bool(np.isfinite(v).all()):
                    raise _Bail
                if float(np.abs(v).max()) > _MAXI:
                    raise _Bail
                v = v.astype(np.int64)  # C truncation == to_numbr
        else:
            if v.dtype.kind == "i":
                v = v.astype(np.float64)  # exact under the int guard
        regs[op[1]] = v
    elif tag == "read1":
        data = regs[op[2]]
        b = _val(op[3], regs)
        if type(b) is not int or b < 0 or b >= data.shape[0]:
            raise _Bail
        v = data[b]
        regs[op[1]] = int(v) if data.dtype.kind == "i" else float(v)
    elif tag == "arr":
        if op[2] == "slot":
            cell = frame[op[3]]
            if type(cell) is not ArrayCell:
                raise _Bail
        else:
            obj = heap._symbols.get(op[3])
            if obj is None or not obj.is_array:
                raise _Bail
            cell = obj.cell(my_pe)
        data = cell.data
        if (
            not isinstance(data, np.ndarray)
            or data.dtype.kind != op[4]
            or data.itemsize != 8
            or data.ndim != 1
        ):
            raise _Bail
        regs[op[1]] = data
    elif tag == "sun":
        regs[op[1]] = _SUN[op[2]](_val(op[3], regs), None)
    elif tag == "scast":
        regs[op[1]] = coerce_static(_val(op[2], regs), op[3], op[4], None)
    elif tag == "symrd":
        obj = heap._symbols.get(op[2])
        if obj is None or obj.is_array:
            raise _Bail
        regs[op[1]] = obj.cell(my_pe).read()
    elif tag == "me":
        regs[op[1]] = my_pe
    elif tag == "np":
        regs[op[1]] = n_pes
    else:  # pragma: no cover — unknown op means a compiler bug
        raise _Bail
