"""Declarative workload registry (the benchbuild-style project table).

Importing this package registers every bundled workload; use
:func:`get_workload` / :func:`all_workloads` to look them up, and
:mod:`repro.bench` to sweep them across engine x executor x PE-count::

    from repro.workloads import get_workload
    from repro import run_lolcode

    w = get_workload("heat2d")
    params = w.bind_params({"steps": 5})
    result = run_lolcode(w.source(params), 4, seed=1)
    assert w.check(result, 4, params) == []

Registered workloads (see the README table):

============= ==================== ===================================
name          domain               communication pattern
============= ==================== ===================================
ring          microbenchmark       nearest-neighbour ring
transpose     linear algebra       all-to-all
heat1d        PDE / stencil        nearest-neighbour halo (ring)
heat2d        PDE / stencil        row-block halo exchange
heat3d        PDE / stencil        z-slab plane halo (6-neighbour)
nbody         particle dynamics    all-pairs block gets
nbody_racy    particle dynamics    all-pairs block gets (racy)
tree_reduce   collectives          binomial tree
scan          collectives          distance-doubling gets
histogram     data analytics       all-to-one under a symbol lock
pi_montecarlo Monte-Carlo          all-to-one (one put per PE)
bfs           graph analytics      data-dependent frontier gets
sample_sort   sorting              all-to-all bucket gets
spmv          sparse linear alg.   irregular row gets
============= ==================== ===================================
"""

from .base import (
    WORKLOADS,
    Param,
    Workload,
    WorkloadError,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

# Importing the kernel modules populates the registry.
from . import comm  # noqa: F401  (ring, transpose)
from . import irregular  # noqa: F401  (bfs, sample_sort, spmv)
from . import montecarlo  # noqa: F401  (pi_montecarlo)
from . import nbody  # noqa: F401  (nbody, nbody_racy)
from . import reduction  # noqa: F401  (tree_reduce, scan, histogram)
from . import stencil  # noqa: F401  (heat1d, heat2d, heat3d)

from .nbody import nbody_source

__all__ = [
    "WORKLOADS",
    "Param",
    "Workload",
    "WorkloadError",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
    "nbody_source",
]
