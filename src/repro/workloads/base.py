"""Declarative workload model and registry.

A :class:`Workload` packages everything the bench orchestrator needs to
measure one parallel pattern end to end:

* a name / domain / communication pattern (the README table columns);
* a set of integer :class:`Param` specs with defaults, bounds, and a
  small *smoke* override used by CI;
* a LOLCODE source generator (``source``), so examples, benchmarks and
  tests all run the *same* kernel text and cannot drift;
* a result checker (``check``) that inspects the :class:`SpmdResult`
  and returns a list of problems (empty = pass).

Workloads register themselves into the module-level :data:`WORKLOADS`
table at import time (the benchbuild-style project registry); the kernel
modules under :mod:`repro.workloads` are imported by the package
``__init__`` so ``all_workloads()`` is complete after
``import repro.workloads``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..shmem.runtime_threads import SpmdResult


class WorkloadError(ValueError):
    """Bad registry lookup or parameter binding."""


@dataclass(frozen=True, slots=True)
class Param:
    """One integer workload parameter (sizes, steps, scales)."""

    name: str
    default: int
    minimum: int = 1
    maximum: Optional[int] = None
    doc: str = ""

    def validate(self, value: object) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise WorkloadError(
                f"parameter {self.name!r} must be an int, got {value!r}"
            )
        if value < self.minimum:
            raise WorkloadError(
                f"parameter {self.name!r} must be >= {self.minimum}, "
                f"got {value}"
            )
        if self.maximum is not None and value > self.maximum:
            raise WorkloadError(
                f"parameter {self.name!r} must be <= {self.maximum}, "
                f"got {value}"
            )
        return value


#: Checker signature: (result, n_pes, bound params) -> list of problems.
CheckFn = Callable[[SpmdResult, int, Mapping[str, int]], List[str]]
SourceFn = Callable[[Mapping[str, int]], str]


@dataclass(frozen=True, slots=True)
class Workload:
    """A registered, parameterized parallel LOLCODE kernel."""

    name: str
    domain: str
    comm_pattern: str
    description: str
    source_fn: SourceFn
    check_fn: CheckFn
    params: Sequence[Param] = ()
    #: param overrides for fast CI smoke runs (small sizes)
    smoke: Mapping[str, int] = field(default_factory=dict)
    #: False => output legitimately varies run to run (e.g. the paper's
    #: racy n-body listing), so the cross-engine differential is skipped
    deterministic: bool = True
    min_pes: int = 1

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise WorkloadError(
            f"workload {self.name!r} has no parameter {name!r} "
            f"(has: {', '.join(p.name for p in self.params) or 'none'})"
        )

    def bind_params(
        self, overrides: Optional[Mapping[str, int]] = None, *, smoke: bool = False
    ) -> Dict[str, int]:
        """Defaults (or smoke sizes), then overrides — all validated."""
        bound = {p.name: p.default for p in self.params}
        if smoke:
            bound.update(self.smoke)
        for key, value in (overrides or {}).items():
            bound[key] = self.param(key).validate(value)
        return bound

    def source(
        self, params: Optional[Mapping[str, int]] = None, *, smoke: bool = False
    ) -> str:
        """Generate the kernel's LOLCODE text for the bound parameters."""
        return self.source_fn(self.bind_params(params, smoke=smoke))

    def check(
        self,
        result: SpmdResult,
        n_pes: int,
        params: Optional[Mapping[str, int]] = None,
        *,
        smoke: bool = False,
    ) -> List[str]:
        """Verify a finished run; returns problems (empty list = pass)."""
        return self.check_fn(result, n_pes, self.bind_params(params, smoke=smoke))


#: The global registry, name -> workload (insertion ordered).
WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise WorkloadError(f"duplicate workload name {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise WorkloadError(
            f"unknown workload {name!r} (registered: {known})"
        ) from None


def all_workloads() -> List[Workload]:
    return list(WORKLOADS.values())


def workload_names() -> List[str]:
    return list(WORKLOADS)


# ---------------------------------------------------------------------------
# Shared checker helpers.
# ---------------------------------------------------------------------------


def parse_floats(text: str) -> List[float]:
    """Every whitespace-separated float-ish token in ``text``."""
    out: List[float] = []
    for tok in text.split():
        try:
            out.append(float(tok))
        except ValueError:
            continue
    return out


def approx_problems(
    label: str, got: float, want: float, *, tol: float = 5e-3
) -> List[str]:
    """VISIBLE prints NUMBARs with 2 decimals, so compare to that grain."""
    scale = max(1.0, abs(want))
    if abs(got - want) <= tol * scale + 5e-3:
        return []
    return [f"{label}: got {got!r}, expected {want!r}"]
