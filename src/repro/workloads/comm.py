"""Pure communication-pattern workloads: ring transfer and all-to-all
transpose.

``ring`` is the registry's version of the paper's Section VI.A listing
(``examples/lol/ring.lol``): each PE publishes ``pe * scale`` in its
partition of a symmetric array and reads its right neighbour's slot —
one remote get per PE, the nearest-neighbour baseline every comm matrix
demo starts from.

``transpose`` is the opposite extreme: an n_pes x n_pes matrix with one
row per PE is transposed with one one-sided put per element — every PE
talks to every other PE (the dense all-to-all that stresses bisection
bandwidth on the modeled machines).
"""

from __future__ import annotations

from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, register

RING_LOL = """\
HAI 1.2
BTW ring transfer (Section VI.A): publish, HUGZ, read right neighbour
WE HAS A buket ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {slots}
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A next_pe ITZ A NUMBR AN ITZ MOD OF SUM OF pe AN 1 AN MAH FRENZ
buket'Z 0 R PRODUKT OF pe AN {scale}
HUGZ
I HAS A got ITZ A NUMBR
TXT MAH BFF next_pe, got R UR buket'Z 0
VISIBLE "HAI ITZ :{{pe}} I GOT :{{got}} FRUM MAH BFF :{{next_pe}}"
KTHXBYE
"""


def _ring_source(params: Mapping[str, int]) -> str:
    return RING_LOL.format(slots=params["slots"], scale=params["scale"])


def _ring_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    problems: List[str] = []
    scale = params["scale"]
    for pe, out in enumerate(result.outputs):
        nxt = (pe + 1) % n_pes
        want = f"HAI ITZ {pe} I GOT {nxt * scale} FRUM MAH BFF {nxt}\n"
        if out != want:
            problems.append(f"PE {pe}: got {out!r}, expected {want!r}")
    return problems


register(
    Workload(
        name="ring",
        domain="microbenchmark",
        comm_pattern="nearest-neighbour ring",
        description="one-sided get from the right neighbour around a ring "
        "(paper Section VI.A)",
        source_fn=_ring_source,
        check_fn=_ring_check,
        params=(
            Param("slots", 32, 1, doc="symmetric array length per PE"),
            Param("scale", 1000, 1, doc="value published is pe * scale"),
        ),
        smoke={"slots": 4},
    )
)


TRANSPOSE_LOL = """\
HAI 1.2
BTW all-to-all: PE i owns row i; element (i, j) travels to PE j slot i
WE HAS A row ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ
WE HAS A col ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ
IM IN YR fill UPPIN YR j TIL BOTH SAEM j AN MAH FRENZ
  row'Z j R SUM OF PRODUKT OF ME AN {scale} AN j
IM OUTTA YR fill
HUGZ
IM IN YR send UPPIN YR j TIL BOTH SAEM j AN MAH FRENZ
  TXT MAH BFF j, UR col'Z ME R MAH row'Z j
IM OUTTA YR send
HUGZ
I HAS A acc ITZ A NUMBR AN ITZ 0
IM IN YR add UPPIN YR j TIL BOTH SAEM j AN MAH FRENZ
  acc R SUM OF acc AN col'Z j
IM OUTTA YR add
VISIBLE "PE " ME " COLSUM:: " acc
KTHXBYE
"""


def _transpose_source(params: Mapping[str, int]) -> str:
    return TRANSPOSE_LOL.format(scale=params["scale"])


def _transpose_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    # After the transpose PE i holds col[j] = j * scale + i, so its
    # checksum is scale * n(n-1)/2 + n * i.
    problems: List[str] = []
    scale = params["scale"]
    base = scale * n_pes * (n_pes - 1) // 2
    for pe, out in enumerate(result.outputs):
        want = f"PE {pe} COLSUM: {base + n_pes * pe}\n"
        if out != want:
            problems.append(f"PE {pe}: got {out!r}, expected {want!r}")
    return problems


register(
    Workload(
        name="transpose",
        domain="linear algebra",
        comm_pattern="all-to-all",
        description="n_pes x n_pes matrix transpose, one one-sided put per "
        "element (dense all-to-all)",
        source_fn=_transpose_source,
        check_fn=_transpose_check,
        params=(Param("scale", 10, 1, doc="row i holds i*scale + j"),),
    )
)
