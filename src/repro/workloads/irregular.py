"""Irregular-communication workloads: BFS, sample sort, sparse SpMV.

These are the ROADMAP item-5 kernels: communication whose *targets and
volumes depend on the data*, which no stencil or collective exercises.
All three are integer / exact-small-float kernels — outputs are
bit-identical across every engine including the native C backend (no
RNG, no negative modulus, no inexact floats).

``bfs`` — level-synchronized breadth-first search over a synthetic
directed graph on ``verts * n_pes`` vertices, block-distributed.  Edges
come from a formula (``nb = (7u + 5e + 3) mod V``, degree
``1 + (u mod maxdeg)``), so there is no adjacency build step, but the
traversal is real: every round each PE probes every vertex's frontier
flag with a data-dependent remote get and claims the out-neighbours it
owns.  Distances use a ``level + 1`` encoding (0 = unreached).

``sample_sort`` — bucket exchange by key range: every PE publishes its
keys, then *fetches* (all-to-all-ish gets) every key whose bucket is
itself and selection-sorts its bucket locally.  The positional checksum
``sum((j+1) * recv[j])`` makes the final sorted order observable.

``spmv`` — CSR-style sparse matrix-vector product ``y = A x`` with the
dense vector ``x`` block-distributed.  Column indices come from a
formula (``(13 gr + 7 t + 1) mod ncols``), so each row's gets land on
irregular owners — the classic irregular-gather pattern of sparse
kernels.
"""

from __future__ import annotations

from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, register

# ---------------------------------------------------------------------------
# bfs
# ---------------------------------------------------------------------------

BFS_LOL = """\
HAI 1.2
BTW level-synchronized BFS, dist = level+1 (0 = unreached), pull-style:
BTW each round every PE probes every vertex's frontier flag (remote get)
BTW and claims the out-neighbours it owns.  Fixed round count bounds it.
WE HAS A dist ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {verts}
WE HAS A cur ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {verts}
WE HAS A nxt ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {verts}
I HAS A gverts ITZ PRODUKT OF {verts} AN MAH FRENZ

BTW root: global vertex 0 (owned by PE 0) at level 0
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  dist'Z 0 R 1
  cur'Z 0 R 1
OIC
HUGZ

IM IN YR rounds UPPIN YR rr TIL BOTH SAEM rr AN {rounds}
  IM IN YR scan UPPIN YR gv TIL BOTH SAEM gv AN gverts
    I HAS A ownr ITZ QUOSHUNT OF gv AN {verts}
    I HAS A slot ITZ MOD OF gv AN {verts}
    I HAS A flag ITZ 0
    TXT MAH BFF ownr, flag R UR cur'Z slot
    BOTH SAEM flag AN 1, O RLY?
    YA RLY,
      BTW gv is in the frontier: enumerate its out-edges
      I HAS A deg ITZ SUM OF 1 AN MOD OF gv AN {maxdeg}
      IM IN YR edges UPPIN YR e TIL BOTH SAEM e AN deg
        I HAS A nb ITZ SUM OF PRODUKT OF gv AN 7 AN PRODUKT OF e AN 5
        nb R MOD OF SUM OF nb AN 3 AN gverts
        BTW claim nb if I own it and it is unreached
        BOTH SAEM QUOSHUNT OF nb AN {verts} AN ME, O RLY?
        YA RLY,
          I HAS A lnb ITZ MOD OF nb AN {verts}
          BOTH SAEM dist'Z lnb AN 0, O RLY?
          YA RLY,
            dist'Z lnb R SUM OF rr AN 2
            nxt'Z lnb R 1
          OIC
        OIC
      IM OUTTA YR edges
    OIC
  IM OUTTA YR scan
  HUGZ
  BTW swap frontiers (own slots only)
  IM IN YR sw UPPIN YR u TIL BOTH SAEM u AN {verts}
    cur'Z u R nxt'Z u
    nxt'Z u R 0
  IM OUTTA YR sw
  HUGZ
IM OUTTA YR rounds

I HAS A cnt ITZ 0
I HAS A chk ITZ 0
IM IN YR tally UPPIN YR u TIL BOTH SAEM u AN {verts}
  BIGGER dist'Z u AN 0, O RLY?
  YA RLY,
    cnt R SUM OF cnt AN 1
  OIC
  chk R SUM OF chk AN PRODUKT OF SUM OF u AN 1 AN dist'Z u
IM OUTTA YR tally
VISIBLE "PE " ME " REACHED " cnt " CHK " chk
KTHXBYE
"""


def _bfs_source(params: Mapping[str, int]) -> str:
    return BFS_LOL.format(
        verts=params["verts"],
        maxdeg=params["maxdeg"],
        rounds=params["rounds"],
    )


def bfs_reference(
    n_pes: int, verts: int, maxdeg: int, rounds: int
) -> List[tuple[int, int]]:
    """Per-PE (reached-count, checksum), mirroring the kernel exactly."""
    gverts = verts * n_pes
    dist = [0] * gverts
    cur = [0] * gverts
    dist[0] = 1
    cur[0] = 1
    for rr in range(rounds):
        nxt = [0] * gverts
        for gv in range(gverts):
            if cur[gv] != 1:
                continue
            deg = 1 + gv % maxdeg
            for e in range(deg):
                nb = (gv * 7 + e * 5 + 3) % gverts
                if dist[nb] == 0:
                    dist[nb] = rr + 2
                    nxt[nb] = 1
        cur = nxt
    out = []
    for pe in range(n_pes):
        block = dist[pe * verts:(pe + 1) * verts]
        cnt = sum(1 for d in block if d > 0)
        chk = sum((u + 1) * d for u, d in enumerate(block))
        out.append((cnt, chk))
    return out


def _bfs_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    expected = bfs_reference(
        n_pes, params["verts"], params["maxdeg"], params["rounds"]
    )
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        cnt, chk = expected[pe]
        want = f"PE {pe} REACHED {cnt} CHK {chk}\n"
        if out != want:
            problems.append(f"PE {pe}: got {out!r}, expected {want!r}")
    return problems


register(
    Workload(
        name="bfs",
        domain="graph analytics",
        comm_pattern="data-dependent frontier gets",
        description="level-synchronized BFS on a block-distributed "
        "synthetic digraph; every round probes frontier flags with "
        "data-dependent remote gets",
        source_fn=_bfs_source,
        check_fn=_bfs_check,
        params=(
            Param("verts", 8, 1, doc="vertices owned per PE"),
            Param("maxdeg", 3, 1, doc="degree of vertex u is 1 + (u mod maxdeg)"),
            Param("rounds", 6, 1, doc="BFS rounds (bounds the traversal)"),
        ),
        smoke={"verts": 4, "rounds": 4},
    )
)

# ---------------------------------------------------------------------------
# sample_sort
# ---------------------------------------------------------------------------

SAMPLE_SORT_LOL = """\
HAI 1.2
BTW bucket exchange by key range: publish keys, fetch every key whose
BTW bucket is me (all-to-all-ish gets), selection-sort the bucket.
WE HAS A mykey ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {keys}
I HAS A recv ITZ LOTZ A NUMBRS AN THAR IZ PRODUKT OF {keys} AN MAH FRENZ
I HAS A cnt ITZ 0

IM IN YR fill UPPIN YR j TIL BOTH SAEM j AN {keys}
  mykey'Z j R MOD OF SUM OF SUM OF PRODUKT OF ME AN 31 AN PRODUKT OF j AN 17 AN 5 AN {span}
IM OUTTA YR fill
HUGZ

IM IN YR src UPPIN YR p TIL BOTH SAEM p AN MAH FRENZ
  TXT MAH BFF p AN STUFF,
    IM IN YR slot UPPIN YR j TIL BOTH SAEM j AN {keys}
      I HAS A k ITZ UR mykey'Z j
      BTW bucket(k) = k * n_pes / span
      BOTH SAEM QUOSHUNT OF PRODUKT OF k AN MAH FRENZ AN {span} AN ME, O RLY?
      YA RLY,
        recv'Z cnt R k
        cnt R SUM OF cnt AN 1
      OIC
    IM OUTTA YR slot
  TTYL
IM OUTTA YR src

BTW selection sort recv[0..cnt)
IM IN YR outer UPPIN YR a TIL BOTH SAEM a AN cnt
  I HAS A best ITZ a
  IM IN YR inner UPPIN YR b TIL BOTH SAEM b AN cnt
    BIGGER b AN a, O RLY?
    YA RLY,
      SMALLR recv'Z b AN recv'Z best, O RLY?
      YA RLY,
        best R b
      OIC
    OIC
  IM OUTTA YR inner
  I HAS A tmp ITZ recv'Z a
  recv'Z a R recv'Z best
  recv'Z best R tmp
IM OUTTA YR outer

I HAS A chk ITZ 0
IM IN YR sum UPPIN YR j TIL BOTH SAEM j AN cnt
  chk R SUM OF chk AN PRODUKT OF SUM OF j AN 1 AN recv'Z j
IM OUTTA YR sum
VISIBLE "PE " ME " CNT " cnt " CHK " chk
KTHXBYE
"""


def _sample_sort_source(params: Mapping[str, int]) -> str:
    return SAMPLE_SORT_LOL.format(keys=params["keys"], span=params["span"])


def sample_sort_reference(
    n_pes: int, keys: int, span: int
) -> List[tuple[int, int]]:
    """Per-PE (bucket-size, positional checksum of the sorted bucket)."""
    out = []
    for pe in range(n_pes):
        bucket: List[int] = []
        for p in range(n_pes):
            for j in range(keys):
                k = (p * 31 + j * 17 + 5) % span
                if (k * n_pes) // span == pe:
                    bucket.append(k)
        bucket.sort()
        chk = sum((j + 1) * k for j, k in enumerate(bucket))
        out.append((len(bucket), chk))
    return out


def _sample_sort_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    expected = sample_sort_reference(n_pes, params["keys"], params["span"])
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        cnt, chk = expected[pe]
        want = f"PE {pe} CNT {cnt} CHK {chk}\n"
        if out != want:
            problems.append(f"PE {pe}: got {out!r}, expected {want!r}")
    return problems


register(
    Workload(
        name="sample_sort",
        domain="sorting",
        comm_pattern="all-to-all bucket gets",
        description="bucket sort by key range: every PE fetches the keys "
        "in its bucket from every other PE, then sorts locally",
        source_fn=_sample_sort_source,
        check_fn=_sample_sort_check,
        params=(
            Param("keys", 8, 1, doc="keys generated per PE"),
            Param("span", 64, 2, doc="keys lie in [0, span)"),
        ),
        smoke={"keys": 4},
    )
)

# ---------------------------------------------------------------------------
# spmv
# ---------------------------------------------------------------------------

SPMV_LOL = """\
HAI 1.2
BTW CSR-style SpMV y = A x: x is block-distributed ({rows} floats per
BTW PE); column indices come from a formula, so each row's gets land on
BTW irregular owners.  All values are small integers in doubles: exact.
WE HAS A x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {rows}
I HAS A ncols ITZ PRODUKT OF {rows} AN MAH FRENZ

IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN {rows}
  I HAS A gi ITZ SUM OF PRODUKT OF ME AN {rows} AN i
  x'Z i R SUM OF 1.0 AN MOD OF gi AN 7
IM OUTTA YR fill
HUGZ

I HAS A chk ITZ A NUMBAR AN ITZ 0.0
IM IN YR rowz UPPIN YR r TIL BOTH SAEM r AN {rows}
  I HAS A gr ITZ SUM OF PRODUKT OF ME AN {rows} AN r
  I HAS A y ITZ A NUMBAR AN ITZ 0.0
  IM IN YR terms UPPIN YR t TIL BOTH SAEM t AN {nnzrow}
    BTW column of term t of global row gr
    I HAS A c ITZ MOD OF SUM OF SUM OF PRODUKT OF gr AN 13 AN PRODUKT OF t AN 7 AN 1 AN ncols
    I HAS A val ITZ SUM OF 1 AN MOD OF SUM OF gr AN t AN 5
    I HAS A ownr ITZ QUOSHUNT OF c AN {rows}
    I HAS A xv ITZ A NUMBAR AN ITZ 0.0
    TXT MAH BFF ownr, xv R UR x'Z MOD OF c AN {rows}
    y R SUM OF y AN PRODUKT OF val AN xv
  IM OUTTA YR terms
  chk R SUM OF chk AN PRODUKT OF SUM OF r AN 1 AN y
IM OUTTA YR rowz
VISIBLE "PE " ME " CHK " chk
KTHXBYE
"""


def _spmv_source(params: Mapping[str, int]) -> str:
    return SPMV_LOL.format(rows=params["rows"], nnzrow=params["nnzrow"])


def spmv_reference(n_pes: int, rows: int, nnzrow: int) -> List[float]:
    """Per-PE weighted checksums, FP-order-faithful to the kernel."""
    ncols = rows * n_pes
    x = [1.0 + (gi % 7) for gi in range(ncols)]
    out = []
    for pe in range(n_pes):
        chk = 0.0
        for r in range(rows):
            gr = pe * rows + r
            y = 0.0
            for t in range(nnzrow):
                c = (gr * 13 + t * 7 + 1) % ncols
                val = 1 + (gr + t) % 5
                y = y + val * x[c]
            chk = chk + (r + 1) * y
        out.append(chk)
    return out


def _spmv_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    from .base import approx_problems

    expected = spmv_reference(n_pes, params["rows"], params["nnzrow"])
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        prefix = f"PE {pe} CHK "
        line = out.strip()
        if not line.startswith(prefix):
            problems.append(f"PE {pe}: unexpected output {out!r}")
            continue
        problems += approx_problems(
            f"PE {pe} spmv checksum", float(line[len(prefix):]), expected[pe]
        )
    return problems


register(
    Workload(
        name="spmv",
        domain="sparse linear algebra",
        comm_pattern="irregular row gets",
        description="CSR SpMV with a block-distributed dense vector; "
        "formula-generated column indices make every row's gets irregular",
        source_fn=_spmv_source,
        check_fn=_spmv_check,
        params=(
            Param("rows", 6, 1, doc="matrix rows (and x elements) per PE"),
            Param("nnzrow", 3, 1, doc="nonzeros per row"),
        ),
        smoke={"rows": 3, "nnzrow": 2},
    )
)
