HAI 1.2
BTW Section VI.D - teh parallel 2-D n-body application (race-fixed).
BTW Each PE owns 32 particlz in symmetric arrays pos_x/pos_y; every
BTW step it fetches every PE's block (element gets thru TXT MAH BFF),
BTW accumulates softened all-pairs attraction, then integrates.
BTW This version adds teh HUGZ missing frum teh paper's listing
BTW between initialization an teh first force phase.
CAN HAS STDIO?
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
VISIBLE "HAI ITZ :{pe} I HAS PARTICLZ 2 MUV"
WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ 32
WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ 32
I HAS A vel_x ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A vel_y ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A acc_x ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A acc_y ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A tmp_x ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A tmp_y ITZ LOTZ A NUMBARS AN THAR IZ 32
I HAS A dt ITZ 0.01
IM IN YR initloop UPPIN YR i TIL BOTH SAEM i AN 32
  pos_x'Z i R WHATEVAR
  pos_y'Z i R WHATEVAR
  vel_x'Z i R 0.0
  vel_y'Z i R 0.0
IM OUTTA YR initloop
HUGZ
IM IN YR steploop UPPIN YR time TIL BOTH SAEM time AN 10
  IM IN YR clearloop UPPIN YR i TIL BOTH SAEM i AN 32
    acc_x'Z i R 0.0
    acc_y'Z i R 0.0
  IM OUTTA YR clearloop
  IM IN YR peloop UPPIN YR p TIL BOTH SAEM p AN n_pes
    BOTH SAEM p AN pe
    O RLY?
      YA RLY
        IM IN YR cploop UPPIN YR j TIL BOTH SAEM j AN 32
          tmp_x'Z j R pos_x'Z j
          tmp_y'Z j R pos_y'Z j
        IM OUTTA YR cploop
      NO WAI
        TXT MAH BFF p AN STUFF,
          IM IN YR getloop UPPIN YR j TIL BOTH SAEM j AN 32
            tmp_x'Z j R UR pos_x'Z j
            tmp_y'Z j R UR pos_y'Z j
          IM OUTTA YR getloop
        TTYL
    OIC
    IM IN YR iloop UPPIN YR i TIL BOTH SAEM i AN 32
      I HAS A myx ITZ pos_x'Z i
      I HAS A myy ITZ pos_y'Z i
      IM IN YR jloop UPPIN YR j TIL BOTH SAEM j AN 32
        I HAS A dx ITZ DIFF OF tmp_x'Z j AN myx
        I HAS A dy ITZ DIFF OF tmp_y'Z j AN myy
        I HAS A d2 ITZ SUM OF PRODUKT OF dx AN dx ...
          AN SUM OF PRODUKT OF dy AN dy AN 0.1
        I HAS A invd ITZ FLIP OF UNSQUAR OF d2
        I HAS A invd3 ITZ PRODUKT OF invd AN PRODUKT OF invd AN invd
        acc_x'Z i R SUM OF acc_x'Z i AN PRODUKT OF dx AN invd3
        acc_y'Z i R SUM OF acc_y'Z i AN PRODUKT OF dy AN invd3
      IM OUTTA YR jloop
    IM OUTTA YR iloop
  IM OUTTA YR peloop
  HUGZ
  IM IN YR uploop UPPIN YR i TIL BOTH SAEM i AN 32
    vel_x'Z i R SUM OF vel_x'Z i AN PRODUKT OF acc_x'Z i AN dt
    vel_y'Z i R SUM OF vel_y'Z i AN PRODUKT OF acc_y'Z i AN dt
    pos_x'Z i R SUM OF pos_x'Z i AN PRODUKT OF vel_x'Z i AN dt
    pos_y'Z i R SUM OF pos_y'Z i AN PRODUKT OF vel_y'Z i AN dt
  IM OUTTA YR uploop
  HUGZ
IM OUTTA YR steploop
VISIBLE "O HAI ITZ :{pe}, MAH PARTICLZ IZ::"
IM IN YR shoutloop UPPIN YR i TIL BOTH SAEM i AN 32
  VISIBLE pos_x'Z i " " pos_y'Z i
IM OUTTA YR shoutloop
KTHXBYE
