"""Monte-Carlo estimation of pi — the classic embarrassingly-parallel
workload with a single all-to-one combine.

This is the kernel behind ``examples/pi_monte_carlo.py`` (which imports
it from here); the only difference from the original example text is
that the symmetric tally array is sized with ``MAH FRENZ`` instead of a
baked-in PE count, so the same source runs at any width.

The checker is statistical-plus-structural: the printed dart total must
be exact, the hit count in range, the printed estimate must equal
4 * hits / darts at VISIBLE's 2-decimal grain, and for non-trivial dart
counts the estimate must actually look like pi.
"""

from __future__ import annotations

import re
from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, register

PI_LOL = """\
HAI 1.2
BTW one symmetric slot per PE, all living on PE 0's partition view
WE HAS A hits ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ
I HAS A mine ITZ A NUMBR AN ITZ 0

IM IN YR throw UPPIN YR i TIL BOTH SAEM i AN {darts}
  I HAS A x ITZ WHATEVAR
  I HAS A y ITZ WHATEVAR
  I HAS A d ITZ SUM OF SQUAR OF x AN SQUAR OF y
  SMALLR d AN 1.0, O RLY?
  YA RLY,
    mine R SUM OF mine AN 1
  OIC
IM OUTTA YR throw

BTW one-sided put of my tally into slot ME on PE 0
TXT MAH BFF 0, UR hits'Z ME R mine

HUGZ

BOTH SAEM ME AN 0, O RLY?
YA RLY,
  I HAS A total ITZ A NUMBR AN ITZ 0
  IM IN YR add UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    total R SUM OF total AN hits'Z k
  IM OUTTA YR add
  I HAS A pi ITZ QUOSHUNT OF PRODUKT OF 4.0 AN total ...
    AN PRODUKT OF {darts}.0 AN MAH FRENZ
  VISIBLE "PI IZ BOUT " pi " (" total " HITZ OV " ...
    PRODUKT OF {darts} AN MAH FRENZ " DARTZ)"
OIC
KTHXBYE
"""

_PI_LINE = re.compile(
    r"^PI IZ BOUT (?P<pi>[-\d.]+) \((?P<hits>\d+) HITZ OV "
    r"(?P<darts>\d+) DARTZ\)$"
)


def _pi_source(params: Mapping[str, int]) -> str:
    return PI_LOL.format(darts=params["darts"])


def _pi_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    match = _PI_LINE.match(result.outputs[0].strip())
    if not match:
        return [f"PE 0: unexpected output {result.outputs[0]!r}"]
    problems: List[str] = []
    pi_est = float(match.group("pi"))
    hits = int(match.group("hits"))
    darts = int(match.group("darts"))
    want_darts = params["darts"] * n_pes
    if darts != want_darts:
        problems.append(f"dart total {darts}, expected {want_darts}")
    if not 0 <= hits <= darts:
        problems.append(f"hit count {hits} out of range 0..{darts}")
    if abs(pi_est - 4.0 * hits / darts) > 0.005:
        problems.append(
            f"printed estimate {pi_est} inconsistent with {hits}/{darts}"
        )
    if want_darts >= 4000 and not 2.8 <= pi_est <= 3.5:
        problems.append(f"estimate {pi_est} is not plausibly pi")
    for pe, out in enumerate(result.outputs[1:], start=1):
        if out:
            problems.append(f"PE {pe}: unexpected output {out!r}")
    return problems


register(
    Workload(
        name="pi_montecarlo",
        domain="Monte-Carlo",
        comm_pattern="all-to-one (one put per PE)",
        description="darts-in-the-circle pi estimate; per-PE WHATEVAR "
        "streams, tallies combined on PE 0 (examples/pi_monte_carlo.py "
        "kernel)",
        source_fn=_pi_source,
        check_fn=_pi_check,
        params=(Param("darts", 2000, 1, doc="darts thrown per PE"),),
        smoke={"darts": 500},
    )
)
