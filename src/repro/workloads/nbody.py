"""The paper's Section VI.D 2-D n-body application, racy and fixed.

The paper listings ``nbody2d.lol`` (kept faithful to the paper,
including its missing initialization barrier) and ``nbody2d_fixed.lol``
ship *inside* the package (``workloads/lol/``) so an installed
``lolbench`` works outside a repo checkout; ``examples/lol/`` carries
the same files for the documentation/paper-example tests, and a unit
test asserts the two copies stay byte-identical.  :func:`nbody_source`
scales a listing to a requested particle/step count — this is the
single home of the regex-based substitution that used to live in
``benchmarks/conftest.py``.

``nbody`` (the fixed listing) checks structurally — headers, particle
line counts, and that every coordinate is a finite, bounded float; the
physics itself is covered by the cross-engine differential the bench
orchestrator runs on every deterministic workload.  ``nbody_racy`` is
registered with ``deterministic=False``: its output legitimately varies
with thread scheduling (that is the paper's teaching point), so only the
structural checker applies.
"""

from __future__ import annotations

import math
import pathlib
import re
from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, register

_PACKAGED_LOL = pathlib.Path(__file__).resolve().parent / "lol"


def nbody_source(particles: int, steps: int, *, racy: bool = False) -> str:
    """The Section VI.D listing scaled for bench runtimes.

    Every *standalone* literal ``32`` in the listing is the particle
    count (some occurrences sit on ``...`` continuation lines).  The
    substitution is word-bounded so a literal that merely *contains*
    ``32`` (or a particle count that itself contains ``32``, like 320 —
    which a plain ``str.replace`` would corrupt on a second scaling
    pass) can never clobber unrelated constants; same for the step
    count's ``time AN 10`` loop bound.
    """
    name = "nbody2d.lol" if racy else "nbody2d_fixed.lol"
    src = (_PACKAGED_LOL / name).read_text()
    src = re.sub(r"\b32\b", str(particles), src)
    src = re.sub(r"\btime AN 10\b", f"time AN {steps}", src)
    return src


def _nbody_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    particles = params["particles"]
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        lines = out.splitlines()
        if len(lines) != particles + 2:
            problems.append(
                f"PE {pe}: expected {particles + 2} lines, got {len(lines)}"
            )
            continue
        if lines[0] != f"HAI ITZ {pe} I HAS PARTICLZ 2 MUV":
            problems.append(f"PE {pe}: bad header {lines[0]!r}")
        if lines[1] != f"O HAI ITZ {pe}, MAH PARTICLZ IZ:":
            problems.append(f"PE {pe}: bad trailer header {lines[1]!r}")
        for i, line in enumerate(lines[2:]):
            parts = line.split()
            if len(parts) != 2:
                problems.append(f"PE {pe} particle {i}: bad line {line!r}")
                continue
            for coord in parts:
                value = float(coord)
                if not math.isfinite(value) or abs(value) > 1e6:
                    problems.append(
                        f"PE {pe} particle {i}: implausible coordinate "
                        f"{value!r}"
                    )
    return problems


def _fixed_source(params: Mapping[str, int]) -> str:
    return nbody_source(params["particles"], params["steps"])


def _racy_source(params: Mapping[str, int]) -> str:
    return nbody_source(params["particles"], params["steps"], racy=True)


_NBODY_PARAMS = (
    Param("particles", 8, 2, doc="particles per PE"),
    Param("steps", 2, 1, doc="leapfrog timesteps"),
)

register(
    Workload(
        name="nbody",
        domain="particle dynamics",
        comm_pattern="block gets from every PE (all-pairs)",
        description="the paper's 2-D n-body listing with the missing "
        "initialization barrier restored (nbody2d_fixed.lol)",
        source_fn=_fixed_source,
        check_fn=_nbody_check,
        params=_NBODY_PARAMS,
        smoke={"particles": 4, "steps": 1},
    )
)

register(
    Workload(
        name="nbody_racy",
        domain="particle dynamics",
        comm_pattern="block gets from every PE (all-pairs)",
        description="the paper's listing verbatim, data race included — "
        "output varies with scheduling, so only structural checks apply",
        source_fn=_racy_source,
        check_fn=_nbody_check,
        params=_NBODY_PARAMS,
        smoke={"particles": 4, "steps": 1},
        deterministic=False,
    )
)
