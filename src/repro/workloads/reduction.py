"""Collective-shaped workloads built from one-sided ops: binomial-tree
reduction, Hillis-Steele inclusive prefix scan, and a lock-protected
histogram.

All three are exact integer computations, so their checkers compare
against closed-form expectations (tree/scan) or conservation laws
(histogram bin counts must sum to the number of draws) — and all three
are deterministic, including the histogram: the locked merges commute.
"""

from __future__ import annotations

from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, register

TREE_REDUCE_LOL = """\
HAI 1.2
BTW binomial tree: at stride s, PEs wif ME MOD 2s == 0 pull val frum
BTW ME + s and fold it in; after log2(n) rounds PE 0 has teh total
WE HAS A val ITZ SRSLY A NUMBR
val R PRODUKT OF SUM OF ME AN 1 AN {scale}
HUGZ
I HAS A stride ITZ A NUMBR AN ITZ 1
IM IN YR red WILE SMALLR stride AN MAH FRENZ
  I HAS A twice ITZ A NUMBR AN ITZ PRODUKT OF stride AN 2
  BOTH SAEM MOD OF ME AN twice AN 0, O RLY?
  YA RLY,
    I HAS A buddy ITZ A NUMBR AN ITZ SUM OF ME AN stride
    SMALLR buddy AN MAH FRENZ, O RLY?
    YA RLY,
      I HAS A theirs ITZ A NUMBR
      TXT MAH BFF buddy, theirs R UR val
      val R SUM OF val AN theirs
    OIC
  OIC
  HUGZ
  stride R twice
IM OUTTA YR red
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  VISIBLE "TREE SUM:: " val
OIC
KTHXBYE
"""


def _tree_source(params: Mapping[str, int]) -> str:
    return TREE_REDUCE_LOL.format(scale=params["scale"])


def _tree_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    want = f"TREE SUM: {params['scale'] * n_pes * (n_pes + 1) // 2}\n"
    problems: List[str] = []
    if result.outputs[0] != want:
        problems.append(
            f"PE 0: got {result.outputs[0]!r}, expected {want!r}"
        )
    for pe, out in enumerate(result.outputs[1:], start=1):
        if out:
            problems.append(f"PE {pe}: unexpected output {out!r}")
    return problems


register(
    Workload(
        name="tree_reduce",
        domain="collectives",
        comm_pattern="binomial tree",
        description="sum-reduction of per-PE values over a binomial tree "
        "of one-sided gets (log2(n) rounds)",
        source_fn=_tree_source,
        check_fn=_tree_check,
        params=(Param("scale", 10, 1, doc="PE i contributes (i+1)*scale"),),
    )
)


SCAN_LOL = """\
HAI 1.2
BTW Hillis-Steele inclusive scan: at stride s every PE >= s folds in
BTW teh value frum ME - s; double-barrier per round (read, den write)
WE HAS A cur ITZ SRSLY A NUMBR
cur R PRODUKT OF SUM OF ME AN 1 AN {scale}
HUGZ
I HAS A stride ITZ A NUMBR AN ITZ 1
IM IN YR scan WILE SMALLR stride AN MAH FRENZ
  I HAS A mine ITZ A NUMBR AN ITZ cur
  BIGGER SUM OF ME AN 1 AN stride, O RLY?
  YA RLY,
    I HAS A theirs ITZ A NUMBR
    TXT MAH BFF DIFF OF ME AN stride, theirs R UR cur
    mine R SUM OF mine AN theirs
  OIC
  HUGZ
  cur R mine
  HUGZ
  stride R PRODUKT OF stride AN 2
IM OUTTA YR scan
VISIBLE "PE " ME " PREFIX:: " cur
KTHXBYE
"""


def _scan_source(params: Mapping[str, int]) -> str:
    return SCAN_LOL.format(scale=params["scale"])


def _scan_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    scale = params["scale"]
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        want = f"PE {pe} PREFIX: {scale * (pe + 1) * (pe + 2) // 2}\n"
        if out != want:
            problems.append(f"PE {pe}: got {out!r}, expected {want!r}")
    return problems


register(
    Workload(
        name="scan",
        domain="collectives",
        comm_pattern="shifted gets (distance doubling)",
        description="Hillis-Steele inclusive prefix sum across PEs, "
        "log2(n) rounds of stride-doubled one-sided gets",
        source_fn=_scan_source,
        check_fn=_scan_check,
        params=(Param("scale", 10, 1, doc="PE i contributes (i+1)*scale"),),
    )
)


HISTOGRAM_LOL = """\
HAI 1.2
BTW every PE bins {draws} WHATEVAR draws locally, den merges its bins
BTW into PE 0's shared histogram under teh symbol's global lock
WE HAS A bins ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {bins} AN IM SHARIN IT
I HAS A lokal ITZ LOTZ A NUMBRS AN THAR IZ {bins}
HUGZ
IM IN YR draw UPPIN YR i TIL BOTH SAEM i AN {draws}
  I HAS A x ITZ WHATEVAR
  I HAS A b ITZ A NUMBR AN ITZ MAEK PRODUKT OF x AN {bins} A NUMBR
  lokal'Z b R SUM OF lokal'Z b AN 1
IM OUTTA YR draw
IM SRSLY MESIN WIF bins
TXT MAH BFF 0 AN STUFF,
  IM IN YR merge UPPIN YR k TIL BOTH SAEM k AN {bins}
    UR bins'Z k R SUM OF UR bins'Z k AN lokal'Z k
  IM OUTTA YR merge
TTYL
DUN MESIN WIF bins
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  I HAS A tot ITZ A NUMBR AN ITZ 0
  IM IN YR show UPPIN YR k TIL BOTH SAEM k AN {bins}
    VISIBLE "BIN " k ":: " bins'Z k
    tot R SUM OF tot AN bins'Z k
  IM OUTTA YR show
  VISIBLE "TOTAL:: " tot
OIC
KTHXBYE
"""


def _histogram_source(params: Mapping[str, int]) -> str:
    return HISTOGRAM_LOL.format(bins=params["bins"], draws=params["draws"])


def _histogram_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    bins, draws = params["bins"], params["draws"]
    problems: List[str] = []
    lines = result.outputs[0].splitlines()
    if len(lines) != bins + 1:
        return [
            f"PE 0: expected {bins + 1} lines, got {len(lines)}: "
            f"{result.outputs[0]!r}"
        ]
    total = 0
    for k, line in enumerate(lines[:-1]):
        prefix = f"BIN {k}: "
        if not line.startswith(prefix):
            problems.append(f"PE 0 line {k}: unexpected {line!r}")
            continue
        count = int(line[len(prefix):])
        if count < 0:
            problems.append(f"bin {k} negative: {count}")
        total += count
    want_total = draws * n_pes
    if total != want_total:
        problems.append(f"bins sum to {total}, expected {want_total}")
    if lines[-1] != f"TOTAL: {want_total}":
        problems.append(f"total line mismatch: {lines[-1]!r}")
    for pe, out in enumerate(result.outputs[1:], start=1):
        if out:
            problems.append(f"PE {pe}: unexpected output {out!r}")
    return problems


register(
    Workload(
        name="histogram",
        domain="data analytics",
        comm_pattern="all-to-one, lock-protected",
        description="random draws binned locally, merged into PE 0's "
        "shared histogram under the symbol lock (AN IM SHARIN IT)",
        source_fn=_histogram_source,
        check_fn=_histogram_check,
        params=(
            Param("bins", 8, 1, doc="histogram bins on PE 0"),
            Param("draws", 200, 1, doc="WHATEVAR draws per PE"),
        ),
        smoke={"draws": 50},
    )
)
