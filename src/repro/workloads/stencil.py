"""Stencil workloads: 1-D, 2-D and 3-D heat diffusion with halo exchange.

``heat1d`` is the kernel behind ``examples/heat_diffusion.py`` (which
imports it from here — single source of truth): each PE owns a block of
a periodic ring with a maintained hot cell on PE 0, and every timestep
pushes its two boundary cells into the neighbours' halo slots with
predicated one-sided puts.

``heat2d`` scales the same idea to a row-block-decomposed 2-D slab:
each PE owns ``rows`` interior rows of a (rows * n_pes) x cols grid
(cold fixed boundary, maintained hot cell on PE 0) and exchanges whole
boundary rows with its up/down neighbours through ``TXT MAH BFF ... AN
STUFF`` block puts.

``heat3d`` completes the family with a z-slab-decomposed 3-D cube and a
7-point stencil: each PE owns ``nz`` interior z-planes and exchanges
whole boundary *planes* — (nx+2)*(ny+2) cells per put — with its two
slab neighbours every step (the 6-neighbour halo pattern of production
3-D stencils, reduced to 2 bulk plane transfers by the decomposition).

Both checkers re-run the simulation in plain Python with the exact same
floating-point evaluation order, so the comparison only has to absorb
VISIBLE's 2-decimal formatting.
"""

from __future__ import annotations

from typing import List, Mapping

from ..shmem.runtime_threads import SpmdResult
from .base import Param, Workload, approx_problems, register

HEAT1D_LOL = """\
HAI 1.2
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {halo_size}
I HAS A unew ITZ LOTZ A NUMBARS AN THAR IZ {halo_size}

I HAS A left ITZ MOD OF SUM OF ME AN DIFF OF MAH FRENZ AN 1 AN MAH FRENZ
I HAS A rite ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ

BTW initial condition: PE 0's first cell is hot (u=100), rest cold
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  u'Z 1 R 100.0
OIC
HUGZ

IM IN YR step UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW halo exchange: push my boundary cells into my neighbours' halos
  TXT MAH BFF left, UR u'Z {last_halo} R MAH u'Z 1
  TXT MAH BFF rite, UR u'Z 0 R MAH u'Z {cells}
  HUGZ

  BTW explicit Euler: unew[i] = u[i] + k*(u[i-1] - 2u[i] + u[i+1])
  IM IN YR cell UPPIN YR i TIL BOTH SAEM i AN {cells}
    I HAS A c ITZ SUM OF i AN 1
    I HAS A lap ITZ SUM OF u'Z DIFF OF c AN 1 AN u'Z SUM OF c AN 1
    lap R DIFF OF lap AN PRODUKT OF 2.0 AN u'Z c
    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN lap
  IM OUTTA YR cell

  BTW PE 0's first cell is a maintained heat source (stays at 100)
  BOTH SAEM ME AN 0, O RLY?
  YA RLY,
    unew'Z 1 R u'Z 1
  OIC

  HUGZ
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN {cells}
    u'Z SUM OF i AN 1 R unew'Z SUM OF i AN 1
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR step

I HAS A total ITZ SRSLY A NUMBAR
IM IN YR add UPPIN YR i TIL BOTH SAEM i AN {cells}
  total R SUM OF total AN u'Z SUM OF i AN 1
IM OUTTA YR add
VISIBLE "PE " ME " BLOCK HEAT:: " total
KTHXBYE
"""


def _heat1d_source(params: Mapping[str, int]) -> str:
    cells = params["cells"]
    return HEAT1D_LOL.format(
        cells=cells,
        halo_size=cells + 2,
        last_halo=cells + 1,
        steps=params["steps"],
    )


def heat1d_reference(n_pes: int, cells: int, steps: int) -> List[float]:
    """Block heat totals, mirroring the kernel's FP evaluation order."""
    u = [[0.0] * (cells + 2) for _ in range(n_pes)]
    u[0][1] = 100.0
    for _ in range(steps):
        for pe in range(n_pes):
            left = (pe + n_pes - 1) % n_pes
            rite = (pe + 1) % n_pes
            u[left][cells + 1] = u[pe][1]
            u[rite][0] = u[pe][cells]
        # NB: the two puts above only write halo slots (0 and cells+1),
        # which the update below never writes, so doing them in-place
        # before the update matches the barrier-separated kernel.
        new = [row[:] for row in u]
        for pe in range(n_pes):
            for i in range(cells):
                c = i + 1
                lap = u[pe][c - 1] + u[pe][c + 1]
                lap = lap - 2.0 * u[pe][c]
                new[pe][c] = u[pe][c] + 0.25 * lap
        new[0][1] = u[0][1]
        u = new
    totals = []
    for pe in range(n_pes):
        total = 0.0
        for i in range(cells):
            total = total + u[pe][i + 1]
        totals.append(total)
    return totals


def _heat1d_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    expected = heat1d_reference(n_pes, params["cells"], params["steps"])
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        prefix = f"PE {pe} BLOCK HEAT: "
        line = out.strip()
        if not line.startswith(prefix):
            problems.append(f"PE {pe}: unexpected output {out!r}")
            continue
        problems += approx_problems(
            f"PE {pe} block heat", float(line[len(prefix):]), expected[pe]
        )
    return problems


register(
    Workload(
        name="heat1d",
        domain="PDE / stencil",
        comm_pattern="nearest-neighbour halo (ring)",
        description="1-D heat diffusion on a periodic ring, two predicated "
        "one-sided puts per step (examples/heat_diffusion.py kernel)",
        source_fn=_heat1d_source,
        check_fn=_heat1d_check,
        params=(
            Param("cells", 16, 1, doc="interior cells per PE"),
            Param("steps", 40, 1, doc="explicit-Euler timesteps"),
        ),
        smoke={"cells": 8, "steps": 10},
    )
)


HEAT2D_LOL = """\
HAI 1.2
BTW 2-D heat on a row-block-decomposed slab: each PE owns {rows} interior
BTW rows of {colsp2} floats (cols + 2 side halos, fixed cold), plus a top
BTW and bottom halo row exchanged wif teh up/dn neighbours every step.
WE HAS A grid ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {slab}
I HAS A unew ITZ LOTZ A NUMBARS AN THAR IZ {slab}
I HAS A up ITZ A NUMBR AN ITZ DIFF OF ME AN 1
I HAS A dn ITZ A NUMBR AN ITZ SUM OF ME AN 1

BTW hot cell: global (1, 1), owned by PE 0
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  grid'Z {hot} R 100.0
OIC
HUGZ

IM IN YR step UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW push my first interior row into up's bottom halo row
  BIGGER ME AN 0, O RLY?
  YA RLY,
    TXT MAH BFF up AN STUFF,
      IM IN YR hup UPPIN YR c TIL BOTH SAEM c AN {colsp2}
        UR grid'Z SUM OF {bot_halo} AN c R grid'Z SUM OF {colsp2} AN c
      IM OUTTA YR hup
    TTYL
  OIC
  BTW push my last interior row into dn's top halo row
  SMALLR ME AN DIFF OF MAH FRENZ AN 1, O RLY?
  YA RLY,
    TXT MAH BFF dn AN STUFF,
      IM IN YR hdn UPPIN YR c TIL BOTH SAEM c AN {colsp2}
        UR grid'Z c R grid'Z SUM OF {last_row} AN c
      IM OUTTA YR hdn
    TTYL
  OIC
  HUGZ

  BTW 5-point stencil on the interior
  IM IN YR rloop UPPIN YR i TIL BOTH SAEM i AN {rows}
    I HAS A r ITZ SUM OF i AN 1
    IM IN YR cloop UPPIN YR jj TIL BOTH SAEM jj AN {cols}
      I HAS A c ITZ SUM OF jj AN 1
      I HAS A at ITZ SUM OF PRODUKT OF r AN {colsp2} AN c
      I HAS A nbr ITZ SUM OF grid'Z DIFF OF at AN {colsp2} ...
        AN grid'Z SUM OF at AN {colsp2}
      nbr R SUM OF nbr AN SUM OF grid'Z DIFF OF at AN 1 AN grid'Z SUM OF at AN 1
      I HAS A lap ITZ DIFF OF nbr AN PRODUKT OF 4.0 AN grid'Z at
      unew'Z at R SUM OF grid'Z at AN PRODUKT OF 0.2 AN lap
    IM OUTTA YR cloop
  IM OUTTA YR rloop

  BTW maintained heat source
  BOTH SAEM ME AN 0, O RLY?
  YA RLY,
    unew'Z {hot} R grid'Z {hot}
  OIC

  HUGZ
  IM IN YR wr UPPIN YR i TIL BOTH SAEM i AN {rows}
    I HAS A r ITZ SUM OF i AN 1
    IM IN YR wc UPPIN YR jj TIL BOTH SAEM jj AN {cols}
      I HAS A c ITZ SUM OF jj AN 1
      I HAS A at ITZ SUM OF PRODUKT OF r AN {colsp2} AN c
      grid'Z at R unew'Z at
    IM OUTTA YR wc
  IM OUTTA YR wr
  HUGZ
IM OUTTA YR step

I HAS A total ITZ A NUMBAR AN ITZ 0.0
IM IN YR sr UPPIN YR i TIL BOTH SAEM i AN {rows}
  I HAS A r ITZ SUM OF i AN 1
  IM IN YR sc UPPIN YR jj TIL BOTH SAEM jj AN {cols}
    I HAS A c ITZ SUM OF jj AN 1
    total R SUM OF total AN grid'Z SUM OF PRODUKT OF r AN {colsp2} AN c
  IM OUTTA YR sc
IM OUTTA YR sr
VISIBLE "PE " ME " SLAB HEAT:: " total
KTHXBYE
"""


def _heat2d_source(params: Mapping[str, int]) -> str:
    rows, cols = params["rows"], params["cols"]
    colsp2 = cols + 2
    return HEAT2D_LOL.format(
        rows=rows,
        cols=cols,
        colsp2=colsp2,
        slab=(rows + 2) * colsp2,
        last_row=rows * colsp2,
        bot_halo=(rows + 1) * colsp2,
        hot=colsp2 + 1,
        steps=params["steps"],
    )


def heat2d_reference(
    n_pes: int, rows: int, cols: int, steps: int
) -> List[float]:
    """Per-PE slab heat totals, FP-order-faithful to the kernel."""
    height = rows * n_pes
    g = [[0.0] * (cols + 2) for _ in range(height + 2)]
    g[1][1] = 100.0
    for _ in range(steps):
        new = [row[:] for row in g]
        for r in range(1, height + 1):
            for c in range(1, cols + 1):
                nbr = g[r - 1][c] + g[r + 1][c]
                nbr = nbr + (g[r][c - 1] + g[r][c + 1])
                lap = nbr - 4.0 * g[r][c]
                new[r][c] = g[r][c] + 0.2 * lap
        new[1][1] = g[1][1]
        g = new
    totals = []
    for pe in range(n_pes):
        total = 0.0
        for i in range(rows):
            r = pe * rows + i + 1
            for c in range(1, cols + 1):
                total = total + g[r][c]
        totals.append(total)
    return totals


def _heat2d_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    expected = heat2d_reference(
        n_pes, params["rows"], params["cols"], params["steps"]
    )
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        prefix = f"PE {pe} SLAB HEAT: "
        line = out.strip()
        if not line.startswith(prefix):
            problems.append(f"PE {pe}: unexpected output {out!r}")
            continue
        problems += approx_problems(
            f"PE {pe} slab heat", float(line[len(prefix):]), expected[pe]
        )
    return problems


register(
    Workload(
        name="heat2d",
        domain="PDE / stencil",
        comm_pattern="row-block halo exchange (up/down)",
        description="2-D heat diffusion, row-block decomposition, whole "
        "boundary rows exchanged via block puts each step",
        source_fn=_heat2d_source,
        check_fn=_heat2d_check,
        params=(
            Param("rows", 4, 1, doc="interior rows per PE"),
            Param("cols", 8, 1, doc="interior columns"),
            Param("steps", 10, 1, doc="explicit-Euler timesteps"),
        ),
        smoke={"rows": 2, "cols": 4, "steps": 4},
    )
)


HEAT3D_LOL = """\
HAI 1.2
BTW 3-D heat on a z-slab-decomposed cube: each PE owns {nz} interior
BTW z-planes of ({nxp2} x {nyp2}) floats (side halos fixed cold), and
BTW exchanges whole boundary planes wif teh up/dn slab neighbours.
WE HAS A grid ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cube}
I HAS A unew ITZ LOTZ A NUMBARS AN THAR IZ {cube}
I HAS A up ITZ A NUMBR AN ITZ DIFF OF ME AN 1
I HAS A dn ITZ A NUMBR AN ITZ SUM OF ME AN 1

BTW hot cell: global (1, 1, 1), owned by PE 0
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  grid'Z {hot} R 100.0
OIC
HUGZ

IM IN YR step UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW push my first interior plane into up's top halo plane
  BIGGER ME AN 0, O RLY?
  YA RLY,
    TXT MAH BFF up AN STUFF,
      IM IN YR hup UPPIN YR c TIL BOTH SAEM c AN {plane}
        UR grid'Z SUM OF {top_halo} AN c R grid'Z SUM OF {plane} AN c
      IM OUTTA YR hup
    TTYL
  OIC
  BTW push my last interior plane into dn's bottom halo plane
  SMALLR ME AN DIFF OF MAH FRENZ AN 1, O RLY?
  YA RLY,
    TXT MAH BFF dn AN STUFF,
      IM IN YR hdn UPPIN YR c TIL BOTH SAEM c AN {plane}
        UR grid'Z c R grid'Z SUM OF {last_plane} AN c
      IM OUTTA YR hdn
    TTYL
  OIC
  HUGZ

  BTW 7-point stencil on the interior
  IM IN YR zloop UPPIN YR zi TIL BOTH SAEM zi AN {nz}
    IM IN YR xloop UPPIN YR xi TIL BOTH SAEM xi AN {nx}
      IM IN YR yloop UPPIN YR yi TIL BOTH SAEM yi AN {ny}
        I HAS A at ITZ PRODUKT OF SUM OF zi AN 1 AN {plane}
        at R SUM OF at AN PRODUKT OF SUM OF xi AN 1 AN {nyp2}
        at R SUM OF at AN SUM OF yi AN 1
        I HAS A nbr ITZ SUM OF grid'Z DIFF OF at AN {plane} ...
          AN grid'Z SUM OF at AN {plane}
        nbr R SUM OF nbr AN SUM OF grid'Z DIFF OF at AN {nyp2} ...
          AN grid'Z SUM OF at AN {nyp2}
        nbr R SUM OF nbr AN SUM OF grid'Z DIFF OF at AN 1 AN grid'Z SUM OF at AN 1
        I HAS A lap ITZ DIFF OF nbr AN PRODUKT OF 6.0 AN grid'Z at
        unew'Z at R SUM OF grid'Z at AN PRODUKT OF 0.125 AN lap
      IM OUTTA YR yloop
    IM OUTTA YR xloop
  IM OUTTA YR zloop

  BTW maintained heat source
  BOTH SAEM ME AN 0, O RLY?
  YA RLY,
    unew'Z {hot} R grid'Z {hot}
  OIC

  HUGZ
  IM IN YR wz UPPIN YR zi TIL BOTH SAEM zi AN {nz}
    IM IN YR wx UPPIN YR xi TIL BOTH SAEM xi AN {nx}
      IM IN YR wy UPPIN YR yi TIL BOTH SAEM yi AN {ny}
        I HAS A at ITZ PRODUKT OF SUM OF zi AN 1 AN {plane}
        at R SUM OF at AN PRODUKT OF SUM OF xi AN 1 AN {nyp2}
        at R SUM OF at AN SUM OF yi AN 1
        grid'Z at R unew'Z at
      IM OUTTA YR wy
    IM OUTTA YR wx
  IM OUTTA YR wz
  HUGZ
IM OUTTA YR step

I HAS A total ITZ A NUMBAR AN ITZ 0.0
IM IN YR sz UPPIN YR zi TIL BOTH SAEM zi AN {nz}
  IM IN YR sx UPPIN YR xi TIL BOTH SAEM xi AN {nx}
    IM IN YR sy UPPIN YR yi TIL BOTH SAEM yi AN {ny}
      I HAS A at ITZ PRODUKT OF SUM OF zi AN 1 AN {plane}
      at R SUM OF at AN PRODUKT OF SUM OF xi AN 1 AN {nyp2}
      at R SUM OF at AN SUM OF yi AN 1
      total R SUM OF total AN grid'Z at
    IM OUTTA YR sy
  IM OUTTA YR sx
IM OUTTA YR sz
VISIBLE "PE " ME " CUBE HEAT:: " total
KTHXBYE
"""


def _heat3d_source(params: Mapping[str, int]) -> str:
    nz, nx, ny = params["nz"], params["nx"], params["ny"]
    nyp2 = ny + 2
    plane = (nx + 2) * nyp2
    return HEAT3D_LOL.format(
        nz=nz,
        nx=nx,
        ny=ny,
        nxp2=nx + 2,
        nyp2=nyp2,
        plane=plane,
        cube=(nz + 2) * plane,
        last_plane=nz * plane,
        top_halo=(nz + 1) * plane,
        hot=plane + nyp2 + 1,
        steps=params["steps"],
    )


def heat3d_reference(
    n_pes: int, nz: int, nx: int, ny: int, steps: int
) -> List[float]:
    """Per-PE cube heat totals, FP-order-faithful to the kernel."""
    depth = nz * n_pes
    g = [
        [[0.0] * (ny + 2) for _ in range(nx + 2)] for _ in range(depth + 2)
    ]
    g[1][1][1] = 100.0
    for _ in range(steps):
        new = [[row[:] for row in plane] for plane in g]
        for z in range(1, depth + 1):
            for x in range(1, nx + 1):
                for y in range(1, ny + 1):
                    nbr = g[z - 1][x][y] + g[z + 1][x][y]
                    nbr = nbr + (g[z][x - 1][y] + g[z][x + 1][y])
                    nbr = nbr + (g[z][x][y - 1] + g[z][x][y + 1])
                    lap = nbr - 6.0 * g[z][x][y]
                    new[z][x][y] = g[z][x][y] + 0.125 * lap
        new[1][1][1] = g[1][1][1]
        g = new
    totals = []
    for pe in range(n_pes):
        total = 0.0
        for zi in range(nz):
            z = pe * nz + zi + 1
            for x in range(1, nx + 1):
                for y in range(1, ny + 1):
                    total = total + g[z][x][y]
        totals.append(total)
    return totals


def _heat3d_check(
    result: SpmdResult, n_pes: int, params: Mapping[str, int]
) -> List[str]:
    expected = heat3d_reference(
        n_pes, params["nz"], params["nx"], params["ny"], params["steps"]
    )
    problems: List[str] = []
    for pe, out in enumerate(result.outputs):
        prefix = f"PE {pe} CUBE HEAT: "
        line = out.strip()
        if not line.startswith(prefix):
            problems.append(f"PE {pe}: unexpected output {out!r}")
            continue
        problems += approx_problems(
            f"PE {pe} cube heat", float(line[len(prefix):]), expected[pe]
        )
    return problems


register(
    Workload(
        name="heat3d",
        domain="PDE / stencil",
        comm_pattern="z-slab plane halo exchange (6-neighbour)",
        description="3-D heat diffusion, z-slab decomposition, whole "
        "boundary planes exchanged via block puts each step (7-point "
        "stencil)",
        source_fn=_heat3d_source,
        check_fn=_heat3d_check,
        params=(
            Param("nz", 3, 1, doc="interior z-planes per PE"),
            Param("nx", 4, 1, doc="interior cells along x"),
            Param("ny", 4, 1, doc="interior cells along y"),
            Param("steps", 6, 1, doc="explicit-Euler timesteps"),
        ),
        smoke={"nz": 2, "nx": 3, "ny": 3, "steps": 3},
    )
)
