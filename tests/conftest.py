"""Shared helpers for the test suite."""

from __future__ import annotations

import pathlib

import pytest

from repro import run_lolcode
from repro.interp import run_serial

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_LOL = REPO_ROOT / "examples" / "lol"


def lol(body: str) -> str:
    """Wrap a statement body in HAI/KTHXBYE."""
    return f"HAI 1.2\n{body}\nKTHXBYE\n"


def run1(body: str, **kwargs) -> str:
    """Run a body serially (1 PE) and return VISIBLE output."""
    return run_serial(lol(body), **kwargs)


def runp(body: str, n_pes: int, **kwargs):
    """Run a body SPMD on the thread executor; returns SpmdResult."""
    kwargs.setdefault("seed", 7)
    return run_lolcode(lol(body), n_pes, **kwargs)


@pytest.fixture
def example_path():
    def _get(name: str) -> pathlib.Path:
        path = EXAMPLES_LOL / name
        assert path.exists(), f"missing example {name}"
        return path

    return _get
