"""Shared helpers for the test suite."""

from __future__ import annotations

import pathlib

import pytest

from repro import run_lolcode
from repro.compiler.native import find_cc
from repro.interp import run_serial

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_LOL = REPO_ROOT / "examples" / "lol"


def pytest_collection_modifyitems(config, items):
    """Honour the ``requires_cc`` marker: skip (never fail) without a
    host C compiler, so interpreter-only machines stay green while
    toolchain machines run the full native suite."""
    if find_cc() is not None:
        return
    skip_cc = pytest.mark.skip(reason="no C compiler (cc/gcc/clang) on PATH")
    for item in items:
        if "requires_cc" in item.keywords:
            item.add_marker(skip_cc)


def lol(body: str) -> str:
    """Wrap a statement body in HAI/KTHXBYE."""
    return f"HAI 1.2\n{body}\nKTHXBYE\n"


def run1(body: str, **kwargs) -> str:
    """Run a body serially (1 PE) and return VISIBLE output."""
    return run_serial(lol(body), **kwargs)


def runp(body: str, n_pes: int, **kwargs):
    """Run a body SPMD on the thread executor; returns SpmdResult."""
    kwargs.setdefault("seed", 7)
    return run_lolcode(lol(body), n_pes, **kwargs)


@pytest.fixture
def example_path():
    def _get(name: str) -> pathlib.Path:
        path = EXAMPLES_LOL / name
        assert path.exists(), f"missing example {name}"
        return path

    return _get
