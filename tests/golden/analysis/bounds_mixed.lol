HAI 1.2
BTW index 9 into a 4-slot array is definitely out (E008); arr'Z ME is
BTW out for big worlds (W107); the counted loop verifies in-range.
WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4
arr'Z 9 R 1
arr'Z ME R 2
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4
  arr'Z i R i
IM OUTTA YR l
VISIBLE arr'Z 0
KTHXBYE
