HAI 1.2
BTW divergent branch, but BOTH arms hit exactly one HUGZ: aligned.
BOTH SAEM ME AN 0
O RLY?
  YA RLY
    VISIBLE "root"
    HUGZ
  NO WAI
    HUGZ
OIC
KTHXBYE
