HAI 1.2
BTW a PE-dependent trip count around a barrier: PEs fall out of the
BTW loop at different rounds and stop meeting at the HUGZ.
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN ME
  HUGZ
IM OUTTA YR l
KTHXBYE
