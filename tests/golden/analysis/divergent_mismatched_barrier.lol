HAI 1.2
BTW only PE 0 reaches the HUGZ: everyone else sails past and PE 0
BTW deadlocks at the barrier.
BOTH SAEM ME AN 0
O RLY?
  YA RLY
    HUGZ
OIC
KTHXBYE
