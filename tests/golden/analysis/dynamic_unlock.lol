HAI 1.2
BTW DUN MESIN WIF SRS releases through a computed name: the analysis
BTW must assume any lock may have been released (no W103).
WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT
I HAS A nm ITZ A YARN AN ITZ "k"
IM SRSLY MESIN WIF k
k R 1
DUN MESIN WIF SRS nm
KTHXBYE
