HAI 1.2
BTW the paper's Figure 2 bug: the put may still be in flight when the
BTW local read runs.
WE HAS A x ITZ SRSLY A NUMBR
I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF nxt, UR x R ME
VISIBLE x
KTHXBYE
