HAI 1.2
BTW only PE 0 takes the lock; at the join the lock state differs
BTW across PEs and the uniform release is wrong on the others.
WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT
BOTH SAEM ME AN 0
O RLY?
  YA RLY
    IM SRSLY MESIN WIF k
OIC
DUN MESIN WIF k
KTHXBYE
