HAI 1.2
BTW blocking re-acquire while already held: self-deadlock.
WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT
IM SRSLY MESIN WIF k
IM SRSLY MESIN WIF k
DUN MESIN WIF k
KTHXBYE
