HAI 1.2
BTW the lock is released on BOTH arms: the old "no DUN MESIN WIF
BTW anywhere" heuristic is replaced by a real every-path proof.
WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT
IM SRSLY MESIN WIF k
I HAS A n ITZ A NUMBR AN ITZ 1
BOTH SAEM n AN 1
O RLY?
  YA RLY
    k R 1
    DUN MESIN WIF k
  NO WAI
    k R 2
    DUN MESIN WIF k
OIC
KTHXBYE
