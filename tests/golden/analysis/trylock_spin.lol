HAI 1.2
BTW the idiomatic try-lock spin: IM MESIN WIF puts the outcome in IT,
BTW the YA RLY edge is refined to "held", so the release verifies.
WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT
IM IN YR spin
  IM MESIN WIF k
  O RLY?
    YA RLY
      k R SUM OF k AN 1
      DUN MESIN WIF k
      GTFO
  OIC
IM OUTTA YR spin
KTHXBYE
