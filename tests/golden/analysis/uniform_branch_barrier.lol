HAI 1.2
BTW a barrier under a UNIFORM branch: every PE takes the same path,
BTW so the old "HUGZ inside any branch" heuristic was wrong to warn.
I HAS A n ITZ A NUMBR AN ITZ 4
BOTH SAEM n AN 4
O RLY?
  YA RLY
    HUGZ
OIC
KTHXBYE
