"""Unit tests for the CFG + dataflow static analysis package."""

import pytest

from repro.analysis import (
    analyze_program,
    analyze_taint,
    build_cfg,
    compute_facts,
)
from repro.analysis.cfg import Branch, Exit, Goto
from repro.analysis.races import EpochState, RaceAnalysis, RaceChecker
from repro.lang.parser import parse


def codes(source, filename="<test>"):
    return [
        (d.code, d.pos.line)
        for d in analyze_program(parse(source, filename))
    ]


def just_codes(source):
    return [c for c, _line in codes(source)]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfgShape:
    def test_straight_line_two_blocks(self):
        prog = parse("HAI 1.2\nVISIBLE 1\nVISIBLE 2\nKTHXBYE\n")
        cfg = build_cfg(prog.body)
        assert cfg.entry == 0
        rpo = cfg.rpo()
        assert rpo[0] == cfg.entry
        assert rpo[-1] == cfg.exit
        # both statements land in the entry block
        entry = cfg.blocks[cfg.entry]
        assert len(entry.stmts) == 2
        assert isinstance(entry.term, Goto)
        assert isinstance(cfg.blocks[cfg.exit].term, Exit)

    def test_if_diamond(self):
        prog = parse(
            "HAI 1.2\n"
            "BOTH SAEM 1 AN 1\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    VISIBLE 1\n"
            "  NO WAI\n"
            "    VISIBLE 2\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        cfg = build_cfg(prog.body)
        branches = [
            b for b in cfg.blocks if isinstance(b.term, Branch)
        ]
        assert len(branches) == 1
        on_true, on_false = branches[0].term.on_true, branches[0].term.on_false
        assert on_true != on_false
        # both arms rejoin: identical successor downstream
        t_succ = cfg.blocks[on_true].succs
        # the governing tuple marks arm blocks as control-dependent
        assert cfg.blocks[on_true].governing
        assert t_succ  # arms flow onward, not straight to exit

    def test_loop_back_edge_and_dominators(self):
        prog = parse(
            "HAI 1.2\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
            "  VISIBLE i\n"
            "IM OUTTA YR l\n"
            "KTHXBYE\n"
        )
        cfg = build_cfg(prog.body)
        # a back edge exists: some block's successor precedes it in RPO
        rpo = cfg.rpo()
        pos = {b: i for i, b in enumerate(rpo)}
        back = [
            (b, s)
            for b in rpo
            for s in cfg.blocks[b].succs
            if pos[s] <= pos[b]
        ]
        assert back, "counted loop must produce a back edge"
        dom = cfg.dominators()
        # the entry dominates everything reachable
        for bid in rpo:
            assert cfg.entry in dom[bid]
        # the loop header dominates the body block (back-edge source)
        src, header = back[0]
        assert header in dom[src]

    def test_gtfo_breaks_to_loop_exit(self):
        prog = parse(
            "HAI 1.2\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 9\n"
            "  GTFO\n"
            "IM OUTTA YR l\n"
            "VISIBLE 1\n"
            "KTHXBYE\n"
        )
        cfg = build_cfg(prog.body)
        assert cfg.rpo()[-1] == cfg.exit  # still well-formed

    def test_txt_block_is_flattened_with_context(self):
        prog = parse(
            "HAI 1.2\n"
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "TXT MAH BFF 0, UR x R 1\n"
            "KTHXBYE\n"
        )
        cfg = build_cfg(prog.body)
        ctxs = [
            ctx
            for block in cfg.blocks
            for _stmt, ctx in block.stmts
            if ctx is not None
        ]
        assert ctxs, "TXT body statements must carry the PE context"


# ---------------------------------------------------------------------------
# PE-taint lattice
# ---------------------------------------------------------------------------


class TestTaint:
    def test_me_assignment_is_divergent_condition(self):
        prog = parse(
            "HAI 1.2\n"
            "I HAS A pe ITZ A NUMBR AN ITZ ME\n"
            "BOTH SAEM pe AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    VISIBLE 1\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        taint = analyze_taint(prog)
        import repro.lang.ast as ast

        ifs = [
            s
            for s in ast.walk_statements(prog.body)
            if isinstance(s, ast.If)
        ]
        assert len(ifs) == 1 and taint.is_divergent(ifs[0])

    def test_uniform_branch_stays_uniform(self):
        prog = parse(
            "HAI 1.2\n"
            "I HAS A n ITZ A NUMBR AN ITZ 4\n"
            "BOTH SAEM n AN 4\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    VISIBLE 1\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        taint = analyze_taint(prog)
        import repro.lang.ast as ast

        ifs = [
            s
            for s in ast.walk_statements(prog.body)
            if isinstance(s, ast.If)
        ]
        assert len(ifs) == 1 and not taint.is_divergent(ifs[0])

    def test_join_propagates_taint_from_either_path(self):
        # x picks up ME on one arm only; the branch on x afterwards is
        # still divergent (join = set union).
        prog = parse(
            "HAI 1.2\n"
            "I HAS A x ITZ A NUMBR AN ITZ 0\n"
            "I HAS A n ITZ A NUMBR AN ITZ 1\n"
            "BOTH SAEM n AN 1\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    x R ME\n"
            "OIC\n"
            "BOTH SAEM x AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    VISIBLE 1\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        taint = analyze_taint(prog)
        import repro.lang.ast as ast

        ifs = [
            s
            for s in ast.walk_statements(prog.body)
            if isinstance(s, ast.If)
        ]
        assert not taint.is_divergent(ifs[0])
        assert taint.is_divergent(ifs[1])

    def test_reassignment_to_uniform_clears_taint(self):
        prog = parse(
            "HAI 1.2\n"
            "I HAS A x ITZ A NUMBR AN ITZ ME\n"
            "x R 7\n"
            "BOTH SAEM x AN 7\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    VISIBLE 1\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        taint = analyze_taint(prog)
        import repro.lang.ast as ast

        ifs = [
            s
            for s in ast.walk_statements(prog.body)
            if isinstance(s, ast.If)
        ]
        assert not taint.is_divergent(ifs[0])


# ---------------------------------------------------------------------------
# Barrier matching (W101)
# ---------------------------------------------------------------------------


class TestBarriers:
    def test_uniform_branch_barrier_is_clean(self):
        src = (
            "HAI 1.2\n"
            "I HAS A n ITZ A NUMBR AN ITZ 4\n"
            "BOTH SAEM n AN 4\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    HUGZ\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_divergent_aligned_arms_are_clean(self):
        src = (
            "HAI 1.2\n"
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    HUGZ\n"
            "  NO WAI\n"
            "    HUGZ\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_divergent_mismatch_flags_w101(self):
        src = (
            "HAI 1.2\n"
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    HUGZ\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        assert ("W101", 5) in codes(src)

    def test_divergent_loop_with_barrier_flags(self):
        src = (
            "HAI 1.2\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN ME\n"
            "  HUGZ\n"
            "IM OUTTA YR l\n"
            "KTHXBYE\n"
        )
        assert "W101" in just_codes(src)

    def test_uniform_loop_with_barrier_is_clean(self):
        src = (
            "HAI 1.2\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n"
            "  HUGZ\n"
            "IM OUTTA YR l\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []


# ---------------------------------------------------------------------------
# Epoch partitioning / races (W102)
# ---------------------------------------------------------------------------


RACE = (
    "HAI 1.2\n"
    "WE HAS A x ITZ SRSLY A NUMBR\n"
    "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "TXT MAH BFF nxt, UR x R ME\n"
    "I HAS A y ITZ A NUMBR AN ITZ x\n"
    "KTHXBYE\n"
)


class TestRaces:
    def test_figure2_race_flags_with_fixit(self):
        diags = analyze_program(parse(RACE))
        w102 = [d for d in diags if d.code == "W102"]
        assert len(w102) == 1
        assert w102[0].pos.line == 5
        assert w102[0].fixit is not None
        assert w102[0].fixit.text == "HUGZ"

    def test_hugz_partitions_the_epoch(self):
        fixed = RACE.replace(
            "I HAS A y", "HUGZ\nI HAS A y"
        )
        assert just_codes(fixed) == []

    def test_epoch_state_join_unions_writes(self):
        a = EpochState(frozenset({("x", "rw", -1)}))
        b = EpochState(frozenset({("y", "lw", -1)}))
        prog = parse(RACE)
        from repro.analysis import analyze_bounds

        checker = RaceChecker(analyze_taint(prog), analyze_bounds(prog))
        joined = RaceAnalysis(checker).join(a, b)
        assert joined.writes == a.writes | b.writes

    def test_disjoint_indices_do_not_race(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A u ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "I HAS A nxt ITZ A NUMBR AN ITZ "
            "MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF nxt, UR u'Z 3 R ME\n"
            "I HAS A y ITZ A NUMBR AN ITZ u'Z 0\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_overlapping_indices_race(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A u ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "I HAS A nxt ITZ A NUMBR AN ITZ "
            "MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF nxt, UR u'Z 3 R ME\n"
            "I HAS A y ITZ A NUMBR AN ITZ u'Z 3\n"
            "KTHXBYE\n"
        )
        assert "W102" in just_codes(src)

    def test_remote_read_then_local_write_is_allowed(self):
        # the tree-reduction shape: read the buddy's previous-epoch
        # value, then update your own copy
        src = (
            "HAI 1.2\n"
            "WE HAS A val ITZ SRSLY A NUMBR\n"
            "I HAS A buddy ITZ A NUMBR AN ITZ "
            "MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "I HAS A theirs ITZ A NUMBR AN ITZ 0\n"
            "TXT MAH BFF buddy, theirs R UR val\n"
            "val R SUM OF val AN theirs\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_lock_held_accesses_do_not_race(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A c ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF c\n"
            "TXT MAH BFF 0, UR c R SUM OF UR c AN 1\n"
            "I HAS A y ITZ A NUMBR AN ITZ c\n"
            "DUN MESIN WIF c\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []


# ---------------------------------------------------------------------------
# Locks (W103 / W105 / W106)
# ---------------------------------------------------------------------------


class TestLocks:
    def test_released_on_every_path_is_clean(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF k\n"
            "I HAS A n ITZ A NUMBR AN ITZ 1\n"
            "BOTH SAEM n AN 1\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    DUN MESIN WIF k\n"
            "  NO WAI\n"
            "    DUN MESIN WIF k\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_missed_path_flags_w103(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF k\n"
            "I HAS A n ITZ A NUMBR AN ITZ 1\n"
            "BOTH SAEM n AN 1\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    DUN MESIN WIF k\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        # reported at the acquire site, line 3
        assert ("W103", 3) in codes(src)

    def test_double_acquire_flags_w105(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF k\n"
            "IM SRSLY MESIN WIF k\n"
            "DUN MESIN WIF k\n"
            "KTHXBYE\n"
        )
        assert ("W105", 4) in codes(src)

    def test_divergent_arm_acquire_flags_w106(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    IM SRSLY MESIN WIF k\n"
            "OIC\n"
            "DUN MESIN WIF k\n"
            "KTHXBYE\n"
        )
        assert "W106" in just_codes(src)

    def test_trylock_spin_verifies_released(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM IN YR spin\n"
            "  IM MESIN WIF k\n"
            "  O RLY?\n"
            "    YA RLY\n"
            "      DUN MESIN WIF k\n"
            "      GTFO\n"
            "  OIC\n"
            "IM OUTTA YR spin\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_dynamic_unlock_releases_everything(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A k ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "I HAS A nm ITZ A YARN AN ITZ \"k\"\n"
            "IM SRSLY MESIN WIF k\n"
            "DUN MESIN WIF SRS nm\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []


# ---------------------------------------------------------------------------
# Bounds (E008 / W107)
# ---------------------------------------------------------------------------


class TestBounds:
    def test_definite_out_of_range_is_e008(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "arr'Z 9 R 1\n"
            "KTHXBYE\n"
        )
        assert ("E008", 3) in codes(src)

    def test_definitely_negative_is_e008(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "I HAS A i ITZ A NUMBR AN ITZ DIFF OF 0 AN 2\n"
            "arr'Z i R 1\n"
            "KTHXBYE\n"
        )
        assert ("E008", 4) in codes(src)

    def test_possibly_out_of_range_is_w107(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "arr'Z ME R 1\n"
            "KTHXBYE\n"
        )
        assert ("W107", 3) in codes(src)

    def test_counted_loop_index_verifies_in_range(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n"
            "  arr'Z i R i\n"
            "IM OUTTA YR l\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []

    def test_pe_target_past_world_is_e008(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "I HAS A tgt ITZ A NUMBR AN ITZ SUM OF MAH FRENZ AN 1\n"
            "TXT MAH BFF tgt, UR x R 1\n"
            "KTHXBYE\n"
        )
        assert ("E008", 4) in codes(src)

    def test_me_guarded_neighbor_is_clean(self):
        src = (
            "HAI 1.2\n"
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "BIGGR OF ME AN 0\n"
            "BOTH SAEM IT AN ME\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    I HAS A up ITZ A NUMBR AN ITZ DIFF OF ME AN 0\n"
            "    TXT MAH BFF up, UR x R 1\n"
            "OIC\n"
            "KTHXBYE\n"
        )
        assert just_codes(src) == []


# ---------------------------------------------------------------------------
# ProgramFacts
# ---------------------------------------------------------------------------


class TestFacts:
    def test_remote_unwritten_and_epoch_local(self):
        prog = parse(
            "HAI 1.2\n"
            "WE HAS A n ITZ SRSLY A NUMBR\n"
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "n R 8\n"
            "I HAS A nxt ITZ A NUMBR AN ITZ "
            "MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF nxt, UR x R ME\n"
            "KTHXBYE\n"
        )
        facts = compute_facts(prog)
        assert facts.remote_unwritten == {"n"}
        assert facts.epoch_local == {"n"}

    def test_remote_write_kills_the_fact(self):
        prog = parse(
            "HAI 1.2\n"
            "WE HAS A n ITZ SRSLY A NUMBR\n"
            "TXT MAH BFF 0, UR n R 8\n"
            "KTHXBYE\n"
        )
        facts = compute_facts(prog)
        assert "n" not in facts.remote_unwritten


# ---------------------------------------------------------------------------
# Analysis-driven LOOP_VEC admission
# ---------------------------------------------------------------------------


#: a counted loop whose trip count is a symmetric scalar — bailed
#: before ProgramFacts, vectorizes now (no peer ever writes ``n``)
SYM_LIMIT_LOOP = (
    "HAI 1.2\n"
    "WE HAS A n ITZ SRSLY A NUMBR\n"
    "n R 1000\n"
    "I HAS A acc ITZ A NUMBR AN ITZ 0\n"
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN n\n"
    "  acc R SUM OF acc AN i\n"
    "IM OUTTA YR l\n"
    "VISIBLE acc\n"
    "KTHXBYE\n"
)

#: same loop, but a peer may store the trip count — must keep bailing
SYM_LIMIT_WRITTEN = SYM_LIMIT_LOOP.replace(
    "n R 1000\n", "n R 1000\nTXT MAH BFF 0, UR n R 1000\n"
)


class TestFactsVectorize:
    def test_symmetric_limit_now_vectorizes(self):
        from repro.vm import disassemble_source

        assert "LOOP_VEC" in disassemble_source(SYM_LIMIT_LOOP)

    def test_remote_written_limit_still_bails(self):
        from repro.vm import disassemble_source

        assert "LOOP_VEC" not in disassemble_source(SYM_LIMIT_WRITTEN)

    def test_five_way_differential(self):
        from repro.compiler.native import find_cc
        from repro.launcher import run_lolcode

        engines = ["ast", "closure", "vm", "compiled"]
        results = {
            e: run_lolcode(
                SYM_LIMIT_LOOP, 2, engine=e, seed=3
            ).outputs
            for e in engines
        }
        if find_cc() is not None:
            results["c"] = run_lolcode(
                SYM_LIMIT_LOOP, 2, engine="c", executor="process", seed=3
            ).outputs
        baseline = results["ast"]
        assert baseline == ["499500\n", "499500\n"]
        for engine, outputs in results.items():
            assert outputs == baseline, f"{engine} diverged"


# ---------------------------------------------------------------------------
# Diagnostic plumbing
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_all_positions_are_real(self):
        for src in (RACE,):
            for d in analyze_program(parse(src)):
                assert d.pos.line > 0 and d.pos.col > 0

    def test_sarif_shape(self):
        import json

        from repro.analysis import render_sarif
        from repro.lang.checker import check_source

        doc = json.loads(render_sarif(check_source(RACE, "race.lol")))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "lollint"
        races = [r for r in run["results"] if r["ruleId"] == "W102"]
        assert races
        loc = races[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "race.lol"
        assert loc["region"]["startLine"] == 5

    def test_json_shape(self):
        import json

        from repro.analysis import render_json
        from repro.lang.checker import check_source

        doc = json.loads(render_json(check_source(RACE, "race.lol")))
        races = [d for d in doc if d["code"] == "W102"]
        assert races and races[0]["line"] == 5
        assert races[0]["fixit"]


# ---------------------------------------------------------------------------
# check= plumbed through the launcher
# ---------------------------------------------------------------------------


class TestLauncherCheck:
    def test_check_error_refuses_static_errors(self):
        from repro.lang.errors import LolStaticError
        from repro.launcher import run_lolcode

        bad = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "arr'Z 9 R 1\n"
            "KTHXBYE\n"
        )
        with pytest.raises(LolStaticError) as exc_info:
            run_lolcode(bad, 1, executor="serial", check="error")
        assert any(
            d.code == "E008" for d in exc_info.value.diagnostics
        )

    def test_check_warn_runs_and_prints(self, capsys):
        from repro.launcher import run_lolcode

        result = run_lolcode(RACE, 2, check="warn", seed=1)
        assert result.outputs is not None
        assert "W102" in capsys.readouterr().err

    def test_bad_check_mode_is_rejected(self):
        from repro.lang.errors import LolParallelError
        from repro.launcher import run_lolcode

        with pytest.raises(LolParallelError):
            run_lolcode("HAI 1.2\nKTHXBYE\n", 1, check="loud")
