"""`lollint` CLI contract: formats, exit codes, per-code disables."""

import json

import pytest

from repro.cli import lcc_main, lollint_main, lolrun_main

CLEAN = "HAI 1.2\nVISIBLE 1\nKTHXBYE\n"
WARNY = (
    "HAI 1.2\n"
    "WE HAS A x ITZ SRSLY A NUMBR\n"
    "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "TXT MAH BFF nxt, UR x R ME\n"
    "VISIBLE x\n"
    "KTHXBYE\n"
)
BAD = "HAI 1.2\nVISIBLE nope\nKTHXBYE\n"
UNPARSEABLE = "HAI 1.2\nO RLY NOT EVEN CLOSE\n"


@pytest.fixture
def lol(tmp_path):
    def write(name, text):
        p = tmp_path / name
        p.write_text(text)
        return str(p)

    return write


class TestExitCodes:
    def test_clean_is_zero(self, lol):
        assert lollint_main([lol("ok.lol", CLEAN)]) == 0

    def test_warnings_are_zero_without_strict(self, lol, capsys):
        assert lollint_main([lol("warn.lol", WARNY)]) == 0
        assert "W102" in capsys.readouterr().out

    def test_warnings_are_one_under_strict(self, lol):
        assert lollint_main(["--strict", lol("warn.lol", WARNY)]) == 1

    def test_errors_are_two(self, lol):
        assert lollint_main([lol("bad.lol", BAD)]) == 2

    def test_errors_are_two_even_under_strict(self, lol):
        assert lollint_main(["--strict", lol("bad.lol", BAD)]) == 2

    def test_parse_error_is_two_as_e000(self, lol, capsys):
        assert lollint_main([lol("broken.lol", UNPARSEABLE)]) == 2
        assert "E000" in capsys.readouterr().out

    def test_worst_file_wins(self, lol):
        rc = lollint_main([lol("ok.lol", CLEAN), lol("bad.lol", BAD)])
        assert rc == 2


class TestDisable:
    def test_disable_silences_the_code(self, lol, capsys):
        rc = lollint_main(
            ["--strict", "--disable", "W102", lol("warn.lol", WARNY)]
        )
        assert rc == 0
        assert "W102" not in capsys.readouterr().out

    def test_disable_is_repeatable(self, lol):
        src = WARNY.replace("VISIBLE x\n", "I HAS A unused ITZ 1\nVISIBLE x\n")
        rc = lollint_main(
            [
                "--strict",
                "--disable",
                "W102",
                "--disable",
                "W104",
                lol("warn.lol", src),
            ]
        )
        assert rc == 0

    def test_disable_does_not_mask_exit_for_other_codes(self, lol):
        assert (
            lollint_main(["--disable", "W102", lol("bad.lol", BAD)]) == 2
        )


class TestFormats:
    def test_text_includes_fixit_line(self, lol, capsys):
        lollint_main([lol("warn.lol", WARNY)])
        out = capsys.readouterr().out
        assert "fix: insert `HUGZ`" in out

    def test_json_document(self, lol, capsys):
        lollint_main(["--format", "json", lol("warn.lol", WARNY)])
        doc = json.loads(capsys.readouterr().out)
        assert any(d["code"] == "W102" for d in doc)

    def test_sarif_document(self, lol, capsys):
        lollint_main(["--format", "sarif", lol("warn.lol", WARNY)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "W102" for r in doc["runs"][0]["results"]
        )

    def test_sarif_collects_multiple_files(self, lol, capsys):
        lollint_main(
            [
                "--format",
                "sarif",
                lol("a.lol", WARNY),
                lol("b.lol", BAD),
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            for r in doc["runs"][0]["results"]
        }
        assert len(uris) == 2

    def test_errors_only_filter(self, lol, capsys):
        lollint_main(["--errors-only", lol("warn.lol", WARNY)])
        assert "W102" not in capsys.readouterr().out


class TestCompileGates:
    def test_lcc_check_blocks_errors(self, lol, capsys):
        assert lcc_main(["--check", lol("bad.lol", BAD)]) == 2
        assert "E001" in capsys.readouterr().err

    def test_lcc_check_allows_warnings(self, lol, capsys, tmp_path):
        out = tmp_path / "out.c"
        rc = lcc_main(["--check", lol("warn.lol", WARNY), "-o", str(out)])
        assert rc == 0
        assert "W102" in capsys.readouterr().err
        assert out.exists()

    def test_lolrun_check_error_refuses(self, lol, capsys):
        src = (
            "HAI 1.2\n"
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "arr'Z 9 R 1\n"
            "KTHXBYE\n"
        )
        rc = lolrun_main(
            ["--check", "error", "-np", "1", lol("oob.lol", src)]
        )
        assert rc == 1
        assert "E008" in capsys.readouterr().err
