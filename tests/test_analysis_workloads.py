"""The analysis false-positive contract over real kernels.

Every bundled example and every registry workload (at two parameter
scales) is linted; the racy n-body variants must flag their race and
every other kernel must stay silent of parallel-correctness
diagnostics.  This is the guardrail that keeps the analyses *useful*:
a checker that cries wolf on the halo exchange or the tree reduction
would be turned off.
"""

import glob
import os

import pytest

from repro.lang.checker import check_source
from repro.workloads import all_workloads, get_workload

EXAMPLES = sorted(glob.glob(os.path.join("examples", "lol", "*.lol")))

#: parallel-correctness codes that must never false-positive
PARALLEL_CODES = {"E008", "W101", "W102", "W103", "W105", "W106", "W107"}

RACY = {"nbody_racy"}
RACY_EXAMPLES = {os.path.join("examples", "lol", "nbody2d.lol")}


def _workload_cases():
    cases = []
    for wl in all_workloads():
        for scale in ("smoke", "default"):
            cases.append(pytest.param(wl.name, scale, id=f"{wl.name}-{scale}"))
    return cases


@pytest.mark.parametrize("path", EXAMPLES, ids=os.path.basename)
def test_examples_lint(path):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    diags = check_source(source, filename=path)
    flagged = {d.code for d in diags if d.code in PARALLEL_CODES}
    if path in RACY_EXAMPLES:
        assert "W102" in flagged, f"{path} must keep flagging its race"
        assert flagged == {"W102"}
    else:
        assert not flagged, [d.render() for d in diags]


@pytest.mark.parametrize("name,scale", _workload_cases())
def test_workloads_lint(name, scale):
    wl = get_workload(name)
    source = wl.source(smoke=(scale == "smoke"))
    diags = check_source(source, filename=name)
    flagged = {d.code for d in diags if d.code in PARALLEL_CODES}
    if name in RACY:
        assert "W102" in flagged, f"{name} must keep flagging its race"
        assert flagged == {"W102"}
    else:
        assert not flagged, [d.render() for d in diags]
    # no unexplained errors anywhere: the kernels are all valid programs
    assert not [d for d in diags if d.is_error], [
        d.render() for d in diags
    ]


@pytest.mark.parametrize("path", EXAMPLES, ids=os.path.basename)
def test_every_diagnostic_has_a_real_position(path):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    for d in check_source(source, filename=path):
        assert d.pos.line > 0, d.render()
        assert d.pos.col > 0, d.render()
        assert d.pos.filename == path


def test_workload_diagnostics_have_real_positions():
    for wl in all_workloads():
        for d in check_source(wl.source(smoke=True), filename=wl.name):
            assert d.pos.line > 0 and d.pos.col > 0, (
                wl.name,
                d.render(),
            )
