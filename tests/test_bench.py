"""The repro.bench orchestrator: sweep execution, failure collection,
baseline regression comparison, and the lolbench CLI."""

import json

import pytest

from repro.bench import (
    NOISE_FLOOR_S,
    Comparison,
    SweepConfig,
    collect_failures,
    compare_to_baseline,
    main,
    regressions,
    render_comparison,
    render_results,
    run_sweep,
)

pytestmark = pytest.mark.workload


@pytest.fixture(scope="module")
def tiny_payload():
    config = SweepConfig(
        workloads=("ring", "tree_reduce"),
        pe_counts=(1, 2),
        reps=1,
        smoke=True,
    )
    return run_sweep(config)


def test_run_sweep_schema(tiny_payload):
    assert tiny_payload["schema"] == 1
    assert tiny_payload["failures"] == []
    rows = tiny_payload["results"]
    # 2 workloads x 4 engines (closure/ast/vm/compiled) x 2 PE counts
    # on the thread executor
    assert len(rows) == 16
    assert {r["engine"] for r in rows} == {"closure", "ast", "vm", "compiled"}
    for row in rows:
        assert row["checker"] == "pass"
        assert row["differential"] == "pass"
        assert row["seconds"] >= 0.0
        assert row["trace"]["n_pes"] == row["n_pes"]
        machines = {p["machine"] for p in row["projections"]}
        assert any("Epiphany" in m for m in machines)
        assert any("XC40" in m for m in machines)


def test_run_sweep_records_params(tiny_payload):
    ring_rows = [
        r for r in tiny_payload["results"] if r["workload"] == "ring"
    ]
    assert all(r["params"]["slots"] == 4 for r in ring_rows)  # smoke size


def test_render_results_table(tiny_payload):
    table = render_results(tiny_payload["results"])
    assert "ring" in table and "tree_reduce" in table
    assert "ok" in table


def test_param_overrides_reach_the_kernel():
    payload = run_sweep(
        SweepConfig(
            workloads=("scan",),
            pe_counts=(2,),
            engines=("closure",),
            reps=1,
            params={"scan": {"scale": 3}},
        )
    )
    (row,) = payload["results"]
    assert row["params"] == {"scale": 3}
    assert row["checker"] == "pass"
    # With one engine there is nothing to diff against — never claim
    # the differential gate passed.
    assert row["differential"] == "skipped (single engine)"


def test_raising_checker_is_recorded_not_fatal():
    # A checker tripping over malformed output is a verification failure
    # in that row; it must not abort the rest of the sweep.
    from repro.workloads import WORKLOADS, Workload, get_workload, register

    ring = get_workload("ring")
    register(
        Workload(
            name="_test_boom",
            domain="test",
            comm_pattern="none",
            description="checker raises",
            source_fn=ring.source_fn,
            check_fn=lambda *a: (_ for _ in ()).throw(ValueError("boom")),
            params=ring.params,
        )
    )
    try:
        payload = run_sweep(
            SweepConfig(
                workloads=("_test_boom", "ring"),
                engines=("closure",),
                pe_counts=(1,),
                reps=1,
                smoke=True,
            )
        )
    finally:
        WORKLOADS.pop("_test_boom")
    boom_row, ring_row = payload["results"]
    assert boom_row["checker"] == ["checker raised ValueError: boom"]
    assert ring_row["checker"] == "pass"  # sweep continued
    assert any("checker raised" in f for f in payload["failures"])


def test_collect_failures_flags_bad_rows():
    rows = [
        {"workload": "w", "engine": "e", "executor": "x", "n_pes": 1,
         "checker": ["boom"], "differential": "pass"},
        {"workload": "w", "engine": "e2", "executor": "x", "n_pes": 1,
         "checker": "pass", "differential": "output differs from engine 'e'"},
        {"workload": "w", "engine": "e3", "executor": "x", "n_pes": 1,
         "error": "ValueError: nope"},
        {"workload": "w", "engine": "e4", "executor": "x", "n_pes": 1,
         "checker": "pass", "differential": "skipped (nondeterministic workload)"},
    ]
    failures = collect_failures(rows)
    assert len(failures) == 3
    assert any("checker: boom" in f for f in failures)
    assert any("differential" in f for f in failures)
    assert any("error" in f for f in failures)


def test_compile_restricted_workload_skipped_with_reason():
    # A workload the compiled backend cannot translate (SRS computed
    # identifiers) must yield an explicit per-row skip reason for the
    # compiled engine — never an error row, a silent drop, or a silent
    # fallback to an interpreter — while the interpreter rows still run.
    from repro.workloads import WORKLOADS, Workload, register

    register(
        Workload(
            name="_test_srs",
            domain="test",
            comm_pattern="none",
            description="interpret-only kernel",
            source_fn=lambda params: (
                'HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS "x"\nKTHXBYE\n'
            ),
            check_fn=lambda *a: [],
        )
    )
    try:
        payload = run_sweep(
            SweepConfig(
                workloads=("_test_srs",), pe_counts=(1,), reps=1, smoke=True
            )
        )
    finally:
        WORKLOADS.pop("_test_srs")
    rows = {r["engine"]: r for r in payload["results"]}
    assert rows["closure"]["checker"] == "pass"
    assert rows["ast"]["checker"] == "pass"
    assert "seconds" not in rows["compiled"]
    assert "compile-time restriction" in rows["compiled"]["skipped"]
    assert "SRS" in rows["compiled"]["skipped"]
    # an explicit skip is a recorded outcome, not a verification failure
    assert payload["failures"] == []
    assert "SKIP" in render_results(payload["results"])


def test_collect_failures_ignores_explicit_skips():
    rows = [
        {"workload": "w", "engine": "compiled", "executor": "x", "n_pes": 1,
         "skipped": "compile-time restriction: SRS"},
    ]
    assert collect_failures(rows) == []


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def _payload(seconds_by_cell):
    return {
        "results": [
            {
                "workload": w,
                "engine": e,
                "executor": "thread",
                "n_pes": n,
                "seconds": s,
            }
            for (w, e, n), s in seconds_by_cell.items()
        ]
    }


def test_baseline_regression_detected():
    base = _payload({("a", "closure", 4): 0.010})
    cur = _payload({("a", "closure", 4): 0.020})  # 2x and +10ms
    comps = compare_to_baseline(cur, base)
    assert len(comps) == 1
    assert comps[0].ratio == pytest.approx(2.0)
    assert regressions(comps, 0.20) == comps
    assert "REGRESSION" in render_comparison(comps, 0.20)


def test_baseline_noise_floor_absorbs_tiny_cells():
    # 3x slower but only +40us: sub-floor jitter, not a regression.
    base = _payload({("a", "closure", 1): 0.00002})
    cur = _payload({("a", "closure", 1): 0.00006})
    comps = compare_to_baseline(cur, base)
    assert regressions(comps, 0.20) == []
    assert NOISE_FLOOR_S > 0.00006


def test_baseline_improvement_and_missing_cells_ok():
    base = _payload({("a", "closure", 4): 0.020, ("gone", "ast", 1): 0.5})
    cur = _payload({("a", "closure", 4): 0.010, ("new", "ast", 1): 0.5})
    comps = compare_to_baseline(cur, base)
    assert len(comps) == 1  # only the overlapping cell
    assert regressions(comps, 0.20) == []


def test_baseline_different_params_never_compared():
    base = {"results": [{"workload": "a", "engine": "e", "executor": "x",
                         "n_pes": 4, "seconds": 0.001,
                         "params": {"cells": 8}}]}
    cur = {"results": [{"workload": "a", "engine": "e", "executor": "x",
                        "n_pes": 4, "seconds": 0.5,
                        "params": {"cells": 800}}]}
    # 500x slower — but a different problem size, so not comparable.
    assert compare_to_baseline(cur, base) == []


def test_comparison_zero_baseline():
    assert Comparison(("a", "e", "x", 1), 0.0, 0.1).ratio == float("inf")
    assert Comparison(("a", "e", "x", 1), 0.0, 0.0).ratio == 1.0


def test_baseline_keys_by_engine_so_compiled_regresses_independently():
    # A slowdown in the compiled rows must be attributed to the compiled
    # engine only — interpreter cells with the same workload/PE count
    # stay green, and skipped compiled rows (no "seconds") are ignored.
    base = _payload({("a", "closure", 4): 0.010, ("a", "compiled", 4): 0.010})
    cur = _payload({("a", "closure", 4): 0.010, ("a", "compiled", 4): 0.050})
    comps = compare_to_baseline(cur, base)
    bad = regressions(comps, 0.20)
    assert [c.key[1] for c in bad] == ["compiled"]
    cur["results"].append(
        {"workload": "b", "engine": "compiled", "executor": "thread",
         "n_pes": 4, "skipped": "compile-time restriction: SRS"}
    )
    base["results"].append(
        {"workload": "b", "engine": "compiled", "executor": "thread",
         "n_pes": 4, "seconds": 0.010}
    )
    assert len(compare_to_baseline(cur, base)) == len(comps)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "heat2d" in out and "comm pattern" in out


def test_cli_unknown_workload_is_an_error(capsys):
    assert main(["--workloads", "nope", "--out", "/dev/null"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_cli_bad_set_syntax():
    assert main(["--set", "nonsense", "--out", "/dev/null"]) == 2


def test_cli_set_typos_rejected(capsys):
    # Misspelled workload name must not silently sweep with defaults.
    assert main(["--set", "nbdoy.particles=64", "--out", "/dev/null"]) == 2
    assert "unknown workload" in capsys.readouterr().err
    assert main(["--set", "nbody.prticles=64", "--out", "/dev/null"]) == 2
    assert "no parameter" in capsys.readouterr().err
    # Out-of-range values must also fail before any cell is swept.
    assert main(["--set", "nbody.particles=1", "--out", "/dev/null"]) == 2
    assert "must be >= 2" in capsys.readouterr().err


def test_cli_missing_baseline_fails_before_sweeping(capsys, tmp_path):
    assert main(["--baseline", str(tmp_path / "nope.json"),
                 "--out", "/dev/null"]) == 2
    assert "bad --baseline" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["--baseline", str(bad), "--out", "/dev/null"]) == 2


def test_cli_writes_payload_and_baseline_gates(tmp_path, capsys):
    out = tmp_path / "bench.json"
    # Default (non-smoke) heat1d sizes: long enough (~tens of ms) that
    # same-run jitter stays inside the 20% + 2ms regression gate.
    args = [
        "--workloads", "heat1d", "--pes", "4", "--engines", "closure",
        "--reps", "2", "--out", str(out),
    ]
    assert main(args) == 0
    payload = json.loads(out.read_text())
    assert payload["results"][0]["workload"] == "heat1d"
    assert payload["failures"] == []

    # Same-run baseline: no regression.
    assert main(args + ["--baseline", str(out)]) == 0

    # A doctored, impossibly fast baseline must gate with exit 3.
    for row in payload["results"]:
        row["seconds"] = 1e-9
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main(args + ["--baseline", str(fast)]) == 3
    assert "REGRESSION" in capsys.readouterr().out
