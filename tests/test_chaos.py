"""Seeded chaos tests: deterministic fault schedules against the real
stack.

Each scenario arms a :class:`~repro.faults.FaultPlan` — in this process
(parent-side sites) or via ``LOL_FAULTS`` in the environment (worker-side
sites, picked up by pool workers at spawn) — then drives real jobs
through the real pool/scheduler/server/native machinery and asserts the
**robustness contract**: every run ends in either a checker-verified
result or a *typed* error naming the fault.  Nothing hangs (a SIGALRM
watchdog guards every test) and nothing fails silently.

The plans are seeded and the selectors deterministic, so a failing
scenario replays identically under ``pytest -k`` — see
``TestReplayDeterminism``.
"""

import os
import signal

import pytest

from repro import run_lolcode
from repro.faults import (
    ENV_VAR,
    InjectedFaultError,
    activate,
    fault_stats,
    plan_from_rules,
    reset_faults,
)
from repro.lang.errors import LolParallelError
from repro.lang.types import LolType
from repro.service.client import ServiceClient, ServerUnavailableError
from repro.service.pool import (
    WorkerCrashError,
    WorkerPool,
    shutdown_default_pool,
)
from repro.service.scheduler import QueueFullError, Scheduler
from repro.service.server import BackgroundServer
from repro.shmem import SymmetricPlan

from .conftest import lol

pytestmark = [pytest.mark.procs, pytest.mark.service, pytest.mark.chaos]

#: Per-test hang ceiling.  Generous — a chaos scenario includes worker
#: respawns and scheduler backoffs — but finite: the contract is that
#: no injected fault may wedge the stack.
WATCHDOG_S = 180


@pytest.fixture(autouse=True)
def _watchdog_and_disarm():
    def _hung(signum, frame):  # pragma: no cover - only fires on a bug
        raise RuntimeError(
            f"chaos test exceeded the {WATCHDOG_S}s watchdog (stack wedged?)"
        )

    reset_faults()
    previous = signal.signal(signal.SIGALRM, _hung)
    signal.alarm(WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
        reset_faults()


# -- module-level workers (picklable for spawn) -------------------------------


def _worker_rank10(ctx):
    return ctx.my_pe * 10


def _worker_ring(ctx):
    ctx.alloc_scalar("x", LolType.NUMBR)
    ctx.local_write("x", ctx.my_pe * 10)
    ctx.barrier_all()
    nxt = (ctx.my_pe + 1) % ctx.n_pes
    return int(ctx.get("x", nxt))


def _ring_plan():
    plan = SymmetricPlan()
    plan.add("x", LolType.NUMBR, False, 1, False)
    return plan


def _env_armed_pool(monkeypatch, plan, size):
    """Spawn a pool whose *workers* arm ``plan`` from the environment.

    The parent process stays disarmed (its faults module was imported
    long ago), which is exactly the production topology: the plan rides
    ``LOL_FAULTS`` into every subprocess.
    """
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    return WorkerPool(size)


# -- worker-side faults: the pool.reply site ---------------------------------


class TestPoolReplyFaults:
    def test_kill_is_typed_and_pool_recovers(self, monkeypatch):
        plan = plan_from_rules(
            1, [{"site": "pool.reply", "kind": "kill", "rank": 0, "jobs": [1]}]
        )
        with _env_armed_pool(monkeypatch, plan, 2) as pool:
            with pytest.raises(WorkerCrashError, match="PE 0.*WorkerCrash"):
                pool.run(_worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0)
            assert pool.rebuilds == 1
            # Job 2 does not match the rule: the rebuilt pool must be clean.
            result = pool.run(_worker_rank10, 2, SymmetricPlan())
            assert result.returns == [0, 10]

    def test_garbage_reply_is_classified_not_crashing_the_drain(
        self, monkeypatch
    ):
        plan = plan_from_rules(
            1,
            [{"site": "pool.reply", "kind": "garbage", "rank": 1, "jobs": [1]}],
        )
        with _env_armed_pool(monkeypatch, plan, 2) as pool:
            with pytest.raises(WorkerCrashError, match="MalformedReply"):
                pool.run(_worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0)
            result = pool.run(_worker_rank10, 2, SymmetricPlan())
            assert result.returns == [0, 10]

    def test_delay_is_absorbed_by_the_drain_window(self, monkeypatch):
        plan = plan_from_rules(
            1,
            [
                {
                    "site": "pool.reply",
                    "kind": "delay",
                    "rank": 0,
                    "jobs": [1],
                    "delay_s": 0.3,
                }
            ],
        )
        with _env_armed_pool(monkeypatch, plan, 2) as pool:
            result = pool.run(
                _worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0
            )
            assert result.returns == [0, 10]  # slower, never wrong

    def test_repeated_same_rank_death_respawns_every_time(self, monkeypatch):
        """Satellite scenario: rank 0 dies on three consecutive jobs.

        Each death must be detected, typed, and healed by a fresh
        respawn — a pool that survives one crash but not a crash *loop*
        would pass the single-kill test and still be broken.
        """
        plan = plan_from_rules(
            1,
            [
                {
                    "site": "pool.reply",
                    "kind": "kill",
                    "rank": 0,
                    "jobs": [1, 2, 3],
                }
            ],
        )
        with _env_armed_pool(monkeypatch, plan, 2) as pool:
            for _ in range(3):
                with pytest.raises(WorkerCrashError, match="PE 0"):
                    pool.run(
                        _worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0
                    )
            assert pool.rebuilds == 3
            assert pool.workers_replaced >= 3
            result = pool.run(_worker_ring, 2, _ring_plan())
            assert result.returns == [10, 0]


# -- parent-side faults: dispatch and spawn ----------------------------------


class TestPoolDispatchFaults:
    def test_job_send_kill_resends_to_a_fresh_worker(self):
        """A worker dying between liveness check and send is survivable:
        the send's BrokenPipe triggers replace-and-resend, and the job
        still completes correctly."""
        activate(
            plan_from_rules(
                1,
                [{"site": "pool.job_send", "kind": "kill", "rank": 1, "jobs": [1]}],
            )
        )
        with WorkerPool(2) as pool:
            result = pool.run(_worker_rank10, 2, SymmetricPlan())
            assert result.returns == [0, 10]
            assert pool.workers_replaced == 1
            assert pool.rebuilds == 0
        stats = fault_stats()
        assert stats["fires"] == {"pool.job_send:kill": 1}

    def test_job_send_drop_is_typed_and_rebuilds(self):
        activate(
            plan_from_rules(
                1,
                [{"site": "pool.job_send", "kind": "drop", "rank": 1, "jobs": [1]}],
            )
        )
        with WorkerPool(2) as pool:
            with pytest.raises(
                InjectedFaultError, match="pool.job_send.*drop"
            ) as excinfo:
                pool.run(_worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0)
            assert excinfo.value.retryable
            assert pool.rebuilds == 1  # partial dispatch forces a rebuild
            result = pool.run(_worker_rank10, 2, SymmetricPlan())
            assert result.returns == [0, 10]

    def test_worker_spawn_failure_is_typed(self):
        activate(
            plan_from_rules(
                1,
                [
                    {
                        "site": "pool.worker_spawn",
                        "kind": "fail",
                        "rank": 0,
                        "times": 1,
                    }
                ],
            )
        )
        with pytest.raises(InjectedFaultError, match="pool.worker_spawn"):
            WorkerPool(1)
        # The rule's budget is spent: the next spawn attempt succeeds.
        with WorkerPool(1) as pool:
            assert pool.run(_worker_rank10, 1, SymmetricPlan()).returns == [0]


# -- scheduler: retries, admission control -----------------------------------


class TestSchedulerRetry:
    def test_worker_crash_is_retried_and_recorded(self, monkeypatch):
        """The flagship recovery path: a worker killed mid-job fails the
        first attempt with a retryable typed error; the scheduler's
        retry runs on the rebuilt pool and the checker verifies the
        second attempt's answer."""
        shutdown_default_pool()
        plan = plan_from_rules(
            42, [{"site": "pool.reply", "kind": "kill", "rank": 0, "jobs": [1]}]
        )
        monkeypatch.setenv(ENV_VAR, plan.to_json())  # arms the pool workers
        activate(plan)  # arms this (server) process for stats visibility
        try:
            with BackgroundServer(max_concurrency=2) as bg:
                client = ServiceClient(bg.socket_path, timeout=120.0)
                job_id = client.submit(
                    workload="ring", smoke=True, n_pes=2, executor="pool"
                )
                row = client.result(job_id)
                assert row["checker"] == "pass"
                assert row["attempt_count"] == 2
                [attempt] = row["retries"]
                assert attempt["retryable"] is True
                assert "WorkerCrashError" in attempt["error"]
                assert attempt["backoff_s"] > 0
                stats = client.stats()
                assert stats["retries"] >= 1
                assert stats["faults"]["armed"] is True
        finally:
            shutdown_default_pool()

    def test_forced_queue_full_is_typed_on_the_wire(self):
        activate(
            plan_from_rules(
                1,
                [{"site": "scheduler.enqueue", "kind": "queue_full", "times": 1}],
            )
        )
        with BackgroundServer(max_concurrency=2) as bg:
            client = ServiceClient(bg.socket_path, timeout=60.0)
            src = lol('VISIBLE "SHED ME"')
            with pytest.raises(QueueFullError) as excinfo:
                client.submit(src, executor="thread")
            assert excinfo.value.retry_after > 0
            assert excinfo.value.retryable
            # The rule's budget is spent: resubmitting (the client-side
            # reaction QueueFullError asks for) succeeds.
            job_id = client.submit(src, executor="thread")
            assert client.result(job_id)["output"] == "SHED ME\n"
            assert client.stats()["shed"] == 1

    def test_real_bounded_queue_sheds_past_depth(self):
        from repro.service.scheduler import JobSpec

        sched = Scheduler(max_queue_depth=2)  # never started: nothing drains
        spec = JobSpec(source=lol("VISIBLE ME"), executor="thread")
        sched.submit(spec)
        sched.submit(spec)
        with pytest.raises(QueueFullError, match="queue full \\(2/2"):
            sched.submit(spec)
        assert sched.shed_total == 1
        assert sched.stats()["max_queue_depth"] == 2


# -- server: connection drops -------------------------------------------------


class TestServerConnFaults:
    def test_idempotent_op_retries_through_a_dropped_connection(self):
        activate(
            plan_from_rules(
                1, [{"site": "server.conn", "kind": "drop", "times": 1}]
            )
        )
        with BackgroundServer() as bg:
            client = ServiceClient(bg.socket_path, timeout=30.0)
            assert client.ping() == os.getpid()  # retried transparently
        stats = fault_stats()
        assert stats["fires"] == {"server.conn:drop": 1}

    def test_submit_does_not_blind_retry_mid_request(self):
        """A submit whose connection dies after the request was sent is
        *not* replayed (the job may already be enqueued); the caller
        gets the typed availability error and decides."""
        activate(
            plan_from_rules(
                1, [{"site": "server.conn", "kind": "drop", "times": 1}]
            )
        )
        with BackgroundServer() as bg:
            client = ServiceClient(bg.socket_path, timeout=30.0)
            with pytest.raises(ServerUnavailableError) as excinfo:
                client.submit(lol("VISIBLE ME"), executor="thread")
            assert excinfo.value.mid_request is True
            assert excinfo.value.retryable

    def test_absent_server_is_a_typed_connect_failure(self, tmp_path):
        client = ServiceClient(str(tmp_path / "no.sock"), retry=None)
        with pytest.raises(ServerUnavailableError) as excinfo:
            client.ping()
        assert excinfo.value.mid_request is False


# -- native engine: build transients, cache integrity, degradation ------------


def _unique_visible(tag: str) -> tuple[str, str]:
    """A source no previous run has built (the on-disk native cache
    persists across pytest invocations, and a warm hit would skip the
    build path these tests are aiming at)."""
    token = f"{tag} {os.urandom(6).hex()}"
    return lol(f'VISIBLE "{token}"'), f"{token}\n"


class TestNativeFaults:
    def test_fallback_engine_degrades_gracefully_without_a_toolchain(
        self, monkeypatch
    ):
        monkeypatch.setenv("LOL_CC", "lol-cc-that-does-not-exist")
        result = run_lolcode(
            lol('VISIBLE "STILL HERE"'),
            1,
            executor="process",
            engine="c",
            fallback_engine="closure",
        )
        assert result.output == "STILL HERE\n"
        assert result.degraded is True
        assert "NativeToolchainError" in result.degraded_reason

    def test_service_marks_degraded_rows_and_counts_them(self, monkeypatch):
        monkeypatch.setenv("LOL_CC", "lol-cc-that-does-not-exist")
        with BackgroundServer() as bg:
            client = ServiceClient(bg.socket_path, timeout=60.0)
            job_id = client.submit(
                lol('VISIBLE "DEGRADED OK"'),
                engine="c",
                executor="process",
                fallback_engine="closure",
            )
            row = client.result(job_id)
            assert row["output"] == "DEGRADED OK\n"
            assert row["degraded"] is True
            assert "fallback engine 'closure'" in row["degraded_reason"]
            assert client.stats()["degraded"] == 1

    def test_no_fallback_without_opt_in(self, monkeypatch):
        from repro.compiler import NativeToolchainError

        monkeypatch.setenv("LOL_CC", "lol-cc-that-does-not-exist")
        with pytest.raises(NativeToolchainError):
            run_lolcode(lol("VISIBLE ME"), 1, executor="process", engine="c")

    @pytest.mark.requires_cc
    def test_transient_build_failure_is_retried_in_module(self):
        from repro.compiler.native import native_stats

        activate(
            plan_from_rules(
                1, [{"site": "native.build", "kind": "fail", "times": 1}]
            )
        )
        src, expected = _unique_visible("BUILT AFTER RETRY")
        before = native_stats()
        result = run_lolcode(src, 1, executor="process", engine="c")
        assert result.output == expected
        after = native_stats()
        assert after["transient_retries"] == before["transient_retries"] + 1
        assert after["builds"] == before["builds"] + 1

    @pytest.mark.requires_cc
    def test_exhausted_build_budget_is_a_retryable_typed_error(self):
        from repro.compiler.native import NativeBuildTransientError

        activate(
            plan_from_rules(1, [{"site": "native.build", "kind": "fail"}])
        )
        src, _ = _unique_visible("NEVER BUILDS")
        with pytest.raises(
            NativeBuildTransientError, match="native.build"
        ) as excinfo:
            run_lolcode(src, 1, executor="process", engine="c")
        assert excinfo.value.retryable

    @pytest.mark.requires_cc
    def test_corrupt_cached_binary_is_rebuilt_never_executed(self):
        """Satellite scenario: a corrupted cache entry costs one silent
        rebuild; the bad bytes are never exec'd and the answer stays
        checker-correct."""
        from repro.compiler.native import native_stats

        src, expected = _unique_visible("CACHE INTEGRITY")
        first = run_lolcode(src, 1, executor="process", engine="c")
        activate(
            plan_from_rules(
                1, [{"site": "native.cache", "kind": "corrupt", "times": 1}]
            )
        )
        before = native_stats()
        second = run_lolcode(src, 1, executor="process", engine="c")
        after = native_stats()
        assert second.output == first.output == expected
        assert after["corrupt_rebuilds"] == before["corrupt_rebuilds"] + 1
        assert after["builds"] == before["builds"] + 1  # silent rebuild

    @pytest.mark.requires_cc
    def test_truncated_cached_binary_is_rebuilt(self):
        from repro.compiler.native import native_stats

        src, expected = _unique_visible("TRUNCATION")
        run_lolcode(src, 1, executor="process", engine="c")
        activate(
            plan_from_rules(
                1, [{"site": "native.cache", "kind": "truncate", "times": 1}]
            )
        )
        before = native_stats()
        result = run_lolcode(src, 1, executor="process", engine="c")
        assert result.output == expected
        assert (
            native_stats()["corrupt_rebuilds"]
            == before["corrupt_rebuilds"] + 1
        )


# -- the chaos sweep: seeded schedule over registry kernels -------------------


class TestChaosSweep:
    def test_every_job_verifies_or_fails_typed(self, monkeypatch):
        """Registry kernels under a seeded probabilistic kill schedule.

        The robustness contract, end to end: with scheduler retries on,
        every submission must end as a checker-verified result or a
        typed error naming the fault — no silent corruption, no wedged
        queue, no unverified "success"."""
        shutdown_default_pool()
        plan = plan_from_rules(
            42, [{"site": "pool.reply", "kind": "kill", "rank": 0, "p": 0.3}]
        )
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        try:
            with BackgroundServer(max_concurrency=2) as bg:
                client = ServiceClient(bg.socket_path, timeout=150.0)
                jobs = [
                    client.submit(
                        workload=name, smoke=True, n_pes=2, executor="pool"
                    )
                    for name in ("ring", "tree_reduce", "scan")
                    for _ in range(2)
                ]
                verified = 0
                for job_id in jobs:
                    job = client.wait(job_id, timeout=150.0)
                    if job["state"] == "done":
                        assert job["result"]["checker"] == "pass", job
                        verified += 1
                    else:
                        # A loss must be a *named* infrastructure
                        # failure, never a wrong answer or a mystery.
                        assert job["state"] == "error"
                        assert any(
                            marker in job["error"]
                            for marker in (
                                "WorkerCrash",
                                "injected fault",
                                "timed out",
                            )
                        ), job["error"]
                assert verified > 0  # the sweep must not be all losses
        finally:
            shutdown_default_pool()


class TestReplayDeterminism:
    def test_same_plan_same_outcome(self, monkeypatch):
        """Replaying one seeded plan against a fresh stack reproduces
        the same failure and the same recovery — the property that makes
        a chaos-found bug debuggable."""
        plan = plan_from_rules(
            7, [{"site": "pool.reply", "kind": "kill", "rank": 1, "jobs": [1]}]
        )

        def one_round():
            with _env_armed_pool(monkeypatch, plan, 2) as pool:
                try:
                    pool.run(
                        _worker_rank10, 2, SymmetricPlan(), barrier_timeout=10.0
                    )
                    outcome = ("ok",)
                except LolParallelError as exc:
                    outcome = (type(exc).__name__, "PE 1" in str(exc))
                recovered = pool.run(_worker_rank10, 2, SymmetricPlan())
                return outcome, recovered.returns

        assert one_round() == one_round() == (("WorkerCrashError", True), [0, 10])
