"""Tests for the static checker (lollint)."""

import pytest

from repro.lang.checker import check_source

from .conftest import lol


def codes(body: str) -> list[str]:
    return [d.code for d in check_source(lol(body))]


def errors(body: str) -> list[str]:
    return [d.code for d in check_source(lol(body)) if d.is_error]


class TestErrorCodes:
    def test_clean_program(self):
        assert errors("I HAS A x ITZ 1\nVISIBLE x") == []

    def test_e001_undeclared_use(self):
        assert "E001" in codes("VISIBLE nope")

    def test_e002_undeclared_assign(self):
        assert "E002" in codes("nope R 5")

    def test_e003_ur_outside_txt(self):
        body = "WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE UR x"
        assert "E003" in codes(body)

    def test_e003_not_raised_inside_txt(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\nx R 1\n"
            "TXT MAH BFF 0, VISIBLE UR x"
        )
        assert "E003" not in codes(body)

    def test_e004_lock_without_sharin(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE x\n"
            "IM SRSLY MESIN WIF x\nDUN MESIN WIF x"
        )
        assert "E004" in codes(body)

    def test_e005_untyped_symmetric(self):
        assert "E005" in codes("WE HAS A x ITZ 5\nVISIBLE x")

    def test_e006_unknown_function(self):
        assert "E006" in codes("I IZ nope MKAY")

    def test_e006_wrong_arity(self):
        body = (
            "HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\n"
            "VISIBLE I IZ f MKAY"
        )
        assert "E006" in codes(body)

    def test_e007_indexing_scalar(self):
        assert "E007" in codes("I HAS A x ITZ 1\nVISIBLE x'Z 0")

    def test_loop_counter_is_declared(self):
        body = (
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
            "  VISIBLE i\nIM OUTTA YR l"
        )
        assert errors(body) == []

    def test_function_params_declared(self):
        body = "HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\nVISIBLE I IZ f YR 1 MKAY"
        assert errors(body) == []

    def test_positions_reported(self):
        diags = check_source("HAI 1.2\nVISIBLE nope\nKTHXBYE\n")
        assert diags[0].pos.line == 2


class TestWarningCodes:
    def test_w101_barrier_in_pe_branch(self):
        body = (
            "BOTH SAEM ME AN 0, O RLY?\n"
            "YA RLY,\n  HUGZ\nOIC"
        )
        assert "W101" in codes(body)

    def test_w101_not_for_uniform_branch(self):
        body = (
            "I HAS A x ITZ 1\n"
            "BOTH SAEM x AN 1, O RLY?\nYA RLY,\n  HUGZ\nOIC"
        )
        assert "W101" not in codes(body)

    def test_w102_figure2_race(self):
        body = (
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "TXT MAH BFF 0, UR b R 1\n"
            "VISIBLE b"
        )
        assert "W102" in codes(body)

    def test_w102_suppressed_by_hugz(self):
        body = (
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "TXT MAH BFF 0, UR b R 1\n"
            "HUGZ\n"
            "VISIBLE b"
        )
        assert "W102" not in codes(body)

    def test_w103_lock_never_released(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "x R 1\nIM SRSLY MESIN WIF x\nVISIBLE x"
        )
        assert "W103" in codes(body)

    def test_w103_not_when_released(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF x\nx R 1\nDUN MESIN WIF x\nVISIBLE x"
        )
        assert "W103" not in codes(body)

    def test_w104_unused_variable(self):
        assert "W104" in codes("I HAS A never ITZ 1\nVISIBLE 2")

    def test_w104_not_for_used(self):
        assert "W104" not in codes("I HAS A x ITZ 1\nVISIBLE x")

    def test_w104_not_for_string_interpolation(self):
        assert "W104" not in codes(
            'I HAS A x ITZ 1\nVISIBLE "x is :{x}"'
        )


class TestOnPaperExamples:
    def test_barrier_example_clean(self, example_path):
        diags = check_source(example_path("barrier.lol").read_text())
        assert [d for d in diags if d.is_error] == []
        assert "W102" not in [d.code for d in diags]

    def test_nbody_paper_listing_flagged(self, example_path):
        """The static checker also catches the missing-barrier bug in the
        paper's listing (dynamically confirmed in test_paper_examples)."""
        diags = check_source(example_path("nbody2d.lol").read_text())
        assert [d for d in diags if d.is_error] == []

    def test_locks_example_clean(self, example_path):
        diags = check_source(example_path("locks.lol").read_text())
        assert [d for d in diags if d.is_error] == []


class TestLollintCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        from repro.cli import lollint_main

        p = tmp_path / "ok.lol"
        p.write_text("HAI 1.2\nVISIBLE 1\nKTHXBYE\n")
        assert lollint_main([str(p)]) == 0

    def test_error_exit_two(self, tmp_path, capsys):
        from repro.cli import lollint_main

        p = tmp_path / "bad.lol"
        p.write_text("HAI 1.2\nVISIBLE nope\nKTHXBYE\n")
        assert lollint_main([str(p)]) == 2
        assert "E001" in capsys.readouterr().out

    def test_errors_only_filter(self, tmp_path, capsys):
        from repro.cli import lollint_main

        p = tmp_path / "warn.lol"
        p.write_text("HAI 1.2\nI HAS A unused ITZ 1\nVISIBLE 2\nKTHXBYE\n")
        assert lollint_main(["--errors-only", str(p)]) == 0
        assert "W104" not in capsys.readouterr().out

    def test_lolfmt_roundtrip(self, tmp_path, capsys):
        from repro.cli import lolfmt_main

        p = tmp_path / "x.lol"
        p.write_text("HAI 1.2\nI HAS A x ITZ 1, VISIBLE x\nKTHXBYE\n")
        assert lolfmt_main([str(p)]) == 0
        out = capsys.readouterr().out
        assert "I HAS A x ITZ 1\nVISIBLE x" in out

    def test_lolfmt_in_place(self, tmp_path):
        from repro.cli import lolfmt_main

        p = tmp_path / "x.lol"
        p.write_text("HAI 1.2\nVISIBLE    1\nKTHXBYE\n")
        assert lolfmt_main(["-i", str(p)]) == 0
        assert p.read_text() == "HAI 1.2\nVISIBLE 1\nKTHXBYE\n"
