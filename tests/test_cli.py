"""CLI tests for lcc / loli / lolrun (invoked in-process via their mains)."""

import pytest

from repro.cli import lcc_main, loli_main, lolrun_main


@pytest.fixture
def hello_lol(tmp_path):
    p = tmp_path / "hello.lol"
    p.write_text('HAI 1.2\nVISIBLE "HAI ITZ " ME " OF " MAH FRENZ\nKTHXBYE\n')
    return p


@pytest.fixture
def bad_lol(tmp_path):
    p = tmp_path / "bad.lol"
    p.write_text("HAI 1.2\nI HAS A\nKTHXBYE\n")
    return p


class TestLcc:
    def test_emit_c_default(self, hello_lol, tmp_path, capsys):
        out = tmp_path / "hello.c"
        assert lcc_main([str(hello_lol), "-o", str(out)]) == 0
        text = out.read_text()
        assert "shmem_init();" in text
        assert "int main(void)" in text

    def test_emit_c_to_stdout(self, hello_lol, capsys):
        assert lcc_main([str(hello_lol)]) == 0
        assert "shmem_my_pe()" in capsys.readouterr().out

    def test_emit_python(self, hello_lol, capsys):
        assert lcc_main([str(hello_lol), "--emit", "python"]) == 0
        assert "def pe_main(ctx):" in capsys.readouterr().out

    def test_syntax_error_exit_code(self, bad_lol, capsys):
        assert lcc_main([str(bad_lol)]) == 1
        err = capsys.readouterr().err
        assert "bad.lol:2" in err


class TestLoli:
    def test_serial_run(self, hello_lol, capsys):
        assert loli_main([str(hello_lol)]) == 0
        assert capsys.readouterr().out == "HAI ITZ 0 OF 1\n"

    def test_engine_compiled_serial(self, hello_lol, capsys):
        assert loli_main([str(hello_lol), "--engine", "compiled"]) == 0
        assert capsys.readouterr().out == "HAI ITZ 0 OF 1\n"

    def test_max_steps_guard(self, tmp_path, capsys):
        p = tmp_path / "spin.lol"
        p.write_text(
            "HAI 1.2\nIM IN YR l UPPIN YR i WILE WIN\nIM OUTTA YR l\nKTHXBYE\n"
        )
        assert loli_main([str(p), "--max-steps", "100"]) == 1
        assert "steps" in capsys.readouterr().err


class TestLolrun:
    def test_np_flag(self, hello_lol, capsys):
        assert lolrun_main(["-np", "3", str(hello_lol)]) == 0
        out = capsys.readouterr().out
        assert out == "HAI ITZ 0 OF 3\nHAI ITZ 1 OF 3\nHAI ITZ 2 OF 3\n"

    def test_compiled_flag_deprecated_alias(self, hello_lol, capsys):
        assert lolrun_main(["-np", "2", "--compiled", str(hello_lol)]) == 0
        captured = capsys.readouterr()
        assert "HAI ITZ 1 OF 2" in captured.out
        assert "deprecated" in captured.err

    def test_engine_compiled(self, hello_lol, capsys):
        assert lolrun_main(
            ["-np", "2", "--engine", "compiled", str(hello_lol)]
        ) == 0
        captured = capsys.readouterr()
        assert "HAI ITZ 1 OF 2" in captured.out
        assert captured.err == ""

    def test_engine_compiled_reports_restrictions(self, tmp_path, capsys):
        p = tmp_path / "srs.lol"
        p.write_text('HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS "x"\nKTHXBYE\n')
        assert lolrun_main(["-np", "1", "--engine", "compiled", str(p)]) == 1
        assert "SRS" in capsys.readouterr().err

    def test_trace_flag(self, hello_lol, capsys):
        assert lolrun_main(["-np", "2", "--trace", str(hello_lol)]) == 0
        assert "[trace]" in capsys.readouterr().err

    def test_race_check_clean_program(self, hello_lol, capsys):
        assert lolrun_main(["-np", "2", "--race-check", str(hello_lol)]) == 0

    def test_race_check_racy_program_exit_2(self, tmp_path, capsys):
        p = tmp_path / "racy.lol"
        p.write_text(
            "HAI 1.2\n"
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "HUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, UR b R 1\n"
            "VISIBLE b\n"
            "KTHXBYE\n"
        )
        assert lolrun_main(["-np", "4", "--race-check", str(p)]) == 2
        assert "[race]" in capsys.readouterr().err

    def test_runtime_error_reported(self, tmp_path, capsys):
        p = tmp_path / "div0.lol"
        p.write_text("HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n")
        assert lolrun_main(["-np", "1", str(p)]) == 1
        assert "division by zero" in capsys.readouterr().err
