"""Tests for the C + OpenSHMEM backend (the paper's ``lcc`` target).

Structure tests assert the shape of the emitted C; when gcc is available
the suite also *compiles and executes* serial programs against the
embedded ``-DLOL_SHMEM_SIM`` single-PE OpenSHMEM simulation and diffs
their stdout against the interpreter.
"""

import subprocess

import pytest

from repro.compiler import CompileError, compile_c
from repro.compiler.native import find_cc
from repro.interp import run_serial

from .conftest import lol

GCC = find_cc()


def build_and_run(tmp_path, source: str, stdin: str = "") -> str:
    c_code = compile_c(source)
    c_file = tmp_path / "prog.c"
    exe = tmp_path / "prog"
    c_file.write_text(c_code)
    proc = subprocess.run(
        [
            GCC,
            "-DLOL_SHMEM_SIM",
            "-std=c99",
            "-Wall",
            "-Wextra",
            "-Werror",
            "-O1",
            str(c_file),
            "-o",
            str(exe),
            "-lm",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"C build failed:\n{proc.stderr}\n{c_code}"
    run = subprocess.run(
        [str(exe)], input=stdin, capture_output=True, text=True, timeout=60
    )
    assert run.returncode == 0, run.stderr
    return run.stdout


class TestEmittedStructure:
    def test_shmem_init_and_finalize(self):
        c = compile_c(lol("VISIBLE 1"))
        assert "shmem_init();" in c
        assert "shmem_finalize();" in c
        assert "#include <shmem.h>" in c

    def test_me_and_frenz_map_to_shmem(self):
        c = compile_c(lol("VISIBLE ME\nVISIBLE MAH FRENZ"))
        assert "shmem_my_pe()" in c
        assert "shmem_n_pes()" in c

    def test_hugz_is_barrier_all(self):
        c = compile_c(lol("HUGZ"))
        assert "shmem_barrier_all();" in c

    def test_symmetric_scalar_is_file_scope_static(self):
        c = compile_c(lol("WE HAS A x ITZ SRSLY A NUMBR"))
        assert "static long long x LOL_SYMMETRIC; /* symmetric */" in c

    def test_symmetric_array(self):
        c = compile_c(
            lol("WE HAS A p ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32")
        )
        assert "static double p[32] LOL_SYMMETRIC; /* symmetric */" in c

    def test_top_level_private_data_is_not_symmetric(self):
        # I HAS A at top level is file-scope (reachable from functions)
        # but per-PE private: it must NOT be placed in the shim section.
        c = compile_c(lol("I HAS A g ITZ 5\nVISIBLE g"))
        assert "static lol_value_t g;" in c
        assert "static lol_value_t g LOL_SYMMETRIC" not in c

    def test_sharin_it_emits_lock_object(self):
        c = compile_c(
            lol(
                "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                "IM SRSLY MESIN WIF x\nDUN MESIN WIF x"
            )
        )
        assert "static long __lock_x LOL_SYMMETRIC = 0L;" in c
        assert "shmem_set_lock(&__lock_x);" in c
        assert "shmem_clear_lock(&__lock_x);" in c

    def test_trylock_uses_test_lock(self):
        c = compile_c(
            lol(
                "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                "IM MESIN WIF x\nDUN MESIN WIF x"
            )
        )
        assert "shmem_test_lock(&__lock_x)" in c

    def test_remote_get_put(self):
        c = compile_c(
            lol(
                "WE HAS A x ITZ SRSLY A NUMBAR\n"
                "I HAS A y ITZ A NUMBAR\n"
                "TXT MAH BFF 0 AN STUFF\n"
                "  y R UR x\n"
                "  UR x R 1.5\n"
                "TTYL"
            )
        )
        assert "shmem_double_g(&x, __tgt)" in c
        assert "shmem_double_p(&x," in c

    def test_whole_array_get(self):
        c = compile_c(
            lol(
                "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n"
                "I HAS A b ITZ LOTZ A NUMBRS AN THAR IZ 8\n"
                "TXT MAH BFF 0, MAH b R UR a"
            )
        )
        assert "shmem_longlong_get(b, a," in c

    def test_paper_compile_command_shape(self):
        # Section VI.E: lcc code.lol -o executable — one self-contained TU.
        c = compile_c(lol("VISIBLE 1"))
        assert c.count("int main(void)") == 1
        assert "LOL_SHMEM_SIM" in c  # test harness escape hatch documented

    def test_yarn_symmetric_rejected(self):
        with pytest.raises(CompileError):
            compile_c(
                lol(
                    "WE HAS A s ITZ SRSLY A YARN\n"
                    "TXT MAH BFF 0, VISIBLE UR s"
                )
            )

    def test_non_literal_symmetric_size_rejected(self):
        with pytest.raises(CompileError):
            compile_c(
                lol(
                    "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ"
                )
            )

    def test_frenz_size_folds_for_known_launch_width(self):
        # The same declaration compiles once the launch width is fixed —
        # this is what lets registry kernels sized THAR IZ MAH FRENZ run
        # under engine="c".
        c = compile_c(
            lol("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ"),
            n_pes=8,
        )
        assert "static long long a[8] LOL_SYMMETRIC; /* symmetric */" in c

    def test_frenz_arithmetic_folds(self):
        c = compile_c(
            lol(
                "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
                "PRODUKT OF MAH FRENZ AN 2"
            ),
            n_pes=3,
        )
        assert "static long long a[6] LOL_SYMMETRIC; /* symmetric */" in c

    def test_me_dependent_size_rejected_even_with_width(self):
        with pytest.raises(CompileError, match="ME"):
            compile_c(
                lol("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ ME"),
                n_pes=4,
            )

    def test_ur_outside_txt_rejected(self):
        with pytest.raises(CompileError):
            compile_c(lol("WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE UR x"))

    def test_function_accessing_main_locals_ok_at_top_level(self):
        # Top-level vars are file-scope in C, so functions can use them.
        c = compile_c(
            lol(
                "I HAS A g ITZ 5\n"
                "HOW IZ I f\n  FOUND YR g\nIF U SAY SO\n"
                "VISIBLE I IZ f MKAY"
            )
        )
        assert "static lol_value_t lol_fn_f(void)" in c


@pytest.mark.requires_cc
class TestCompileAndRunSerial:
    """End-to-end: emit C, build with gcc -Werror, run, diff vs interpreter."""

    CASES = [
        'VISIBLE "HAI WORLD"',
        "VISIBLE 42\nVISIBLE 3.14159\nVISIBLE WIN\nVISIBLE FAIL",
        "I HAS A x ITZ 5\nx R SUM OF x AN 2\nVISIBLE x",
        "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001\nVISIBLE x",
        "VISIBLE QUOSHUNT OF -7 AN 2\nVISIBLE MOD OF -7 AN 3",
        "VISIBLE SUM OF 1 AN 0.5\nVISIBLE PRODUKT OF 3 AN 4",
        "VISIBLE BIGGR OF 3 AN 9\nVISIBLE SMALLR OF 3.5 AN 1.5",
        "VISIBLE SQUAR OF 7\nVISIBLE UNSQUAR OF 81\nVISIBLE FLIP OF 8",
        'VISIBLE SMOOSH "a" AN 1 AN 2.5 MKAY',
        "VISIBLE BOTH SAEM 2 AN 2.0\nVISIBLE DIFFRINT 2 AN 3",
        "VISIBLE BIGGER 4 AN 2\nVISIBLE SMALLR 4 AN 2",
        "VISIBLE BOTH OF WIN AN FAIL\nVISIBLE EITHER OF FAIL AN WIN\nVISIBLE WON OF WIN AN WIN",
        "VISIBLE ALL OF WIN AN 1 MKAY\nVISIBLE ANY OF FAIL AN 0 MKAY\nVISIBLE NOT 0",
        "VISIBLE MAEK 3.99 A NUMBR\nVISIBLE MAEK 2 A NUMBAR\nVISIBLE MAEK 5 A TROOF",
        "I HAS A x ITZ 2\nBOTH SAEM x AN 2, O RLY?\nYA RLY,\n  VISIBLE 1\nNO WAI\n  VISIBLE 0\nOIC",
        "I HAS A x ITZ 3\nBOTH SAEM x AN 1, O RLY?\nYA RLY,\n  VISIBLE 1\nMEBBE BOTH SAEM x AN 3\n  VISIBLE 3\nNO WAI\n  VISIBLE 0\nOIC",
        "2\nWTF?\nOMG 1\n  VISIBLE 1\nOMG 2\n  VISIBLE 2\nOMG 3\n  VISIBLE 3\n  GTFO\nOMGWTF\n  VISIBLE 9\nOIC",
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n  VISIBLE i\nIM OUTTA YR l",
        "IM IN YR l NERFIN YR i WILE BIGGER i AN -4\n  VISIBLE i\nIM OUTTA YR l",
        "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 5\na'Z 2 R 42\nVISIBLE a'Z 2 \" \" a'Z 0",
        "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 3\na'Z 0 R 1.5\nVISIBLE a'Z 0",
        "HOW IZ I fact YR n\n  BOTH SAEM n AN 0, O RLY?\n  YA RLY,\n    FOUND YR 1\n  OIC\n  FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\nIF U SAY SO\nVISIBLE I IZ fact YR 6 MKAY",
        "I HAS A x ITZ 3.5\nx IS NOW A NUMBR\nVISIBLE x",
        "SUM OF 1 AN 2\nVISIBLE IT",
        'VISIBLE SUM OF "3" AN "4"',
        'VISIBLE "a:)b:>c"',
        "WE HAS A x ITZ SRSLY A NUMBR\nx R 7\nVISIBLE x\nVISIBLE ME\nVISIBLE MAH FRENZ\nHUGZ\nVISIBLE x",
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nIM MESIN WIF x\nVISIBLE IT\nDUN MESIN WIF x",
        # serial self-predication exercises the shmem g/p code paths
        "WE HAS A x ITZ SRSLY A NUMBAR\nTXT MAH BFF 0 AN STUFF\n  UR x R 2.5\n  VISIBLE UR x\nTTYL",
    ]

    @pytest.mark.parametrize("body", CASES, ids=range(len(CASES)))
    def test_case(self, tmp_path, body):
        src = lol(body)
        expected = run_serial(src)
        got = build_and_run(tmp_path, src)
        assert got == expected

    def test_gimmeh(self, tmp_path):
        src = lol('I HAS A x\nGIMMEH x\nVISIBLE "got " x')
        got = build_and_run(tmp_path, src, stdin="hello\n")
        assert got == "got hello\n"

    def test_ring_example_serial(self, tmp_path, example_path):
        # The Section VI.A listing degenerates gracefully to 1 PE.
        src = example_path("ring.lol").read_text()
        expected = run_serial(src)
        got = build_and_run(tmp_path, src)
        assert got == expected

    @pytest.mark.slow
    def test_nbody_serial_matches_shape(self, tmp_path, example_path):
        # Random streams differ (rand() vs Python rng), so compare shape:
        # same line count, same header lines.
        src = example_path("nbody2d_fixed.lol").read_text()
        got = build_and_run(tmp_path, src)
        lines = got.splitlines()
        assert lines[0] == "HAI ITZ 0 I HAS PARTICLZ 2 MUV"
        assert lines[1] == "O HAI ITZ 0, MAH PARTICLZ IZ:"
        assert len(lines) == 2 + 32
        for line in lines[2:]:
            x, y = line.split()
            float(x), float(y)  # parseable coordinates
