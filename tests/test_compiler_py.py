"""Tests for the LOLCODE -> Python backend, including differential
interpreter-vs-compiled checks (same semantics kernels, so outputs must be
bit-identical)."""

import pytest

from repro import run_lolcode
from repro.compiler import (
    CompileError,
    compile_python,
    compile_python_cached,
    load_pe_main,
    run_compiled,
)
from repro.shmem import run_spmd

from .conftest import lol


def diff_check(body: str, n_pes: int = 1, seed: int = 5, **kwargs):
    """Run through interpreter and compiled backend; outputs must match."""
    src = lol(body)
    ri = run_lolcode(src, n_pes, seed=seed, **kwargs)
    rc = run_lolcode(src, n_pes, seed=seed, engine="compiled", **kwargs)
    assert ri.outputs == rc.outputs, (
        f"interpreter vs compiled divergence:\n{ri.outputs!r}\n{rc.outputs!r}"
    )
    return rc


class TestCodegenBasics:
    def test_generates_pe_main(self):
        py = compile_python(lol("VISIBLE 1"))
        assert "def pe_main(ctx):" in py
        fn = load_pe_main(py)
        r = run_spmd(fn, 1)
        assert r.output == "1\n"

    def test_mangled_names_avoid_collisions(self):
        # A LOLCODE variable named 'ctx' must not clash with the context.
        py = compile_python(lol("I HAS A ctx ITZ 5\nVISIBLE ctx"))
        assert "L_ctx" in py
        fn = load_pe_main(py)
        assert run_spmd(fn, 1).output == "5\n"

    def test_srs_rejected(self):
        with pytest.raises(CompileError):
            compile_python(lol('I HAS A x ITZ 1\nVISIBLE SRS "x"'))

    def test_unknown_function_rejected_at_compile_time(self):
        with pytest.raises(CompileError):
            compile_python(lol("I IZ nope MKAY"))

    def test_bad_arity_rejected_at_compile_time(self):
        with pytest.raises(CompileError):
            compile_python(
                lol("HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\nI IZ f MKAY")
            )

    def test_gtfo_outside_any_construct_rejected(self):
        with pytest.raises(CompileError):
            compile_python(lol("GTFO"))

    def test_infinite_loop_without_gtfo_rejected(self):
        with pytest.raises(CompileError):
            compile_python(lol("IM IN YR x\n  VISIBLE 1\nIM OUTTA YR x"))


class TestDifferentialSerial:
    """Interpreter and compiled backend must agree exactly (1 PE)."""

    CASES = [
        'VISIBLE "HAI" 42 3.14 WIN',
        "I HAS A x ITZ 5\nx R SUM OF x AN 2\nVISIBLE x",
        "I HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x",
        "VISIBLE QUOSHUNT OF -7 AN 2\nVISIBLE MOD OF -7 AN 3",
        "VISIBLE BIGGR OF 3 AN 9\nVISIBLE SMALLR OF 3 AN 9",
        'VISIBLE SMOOSH "a" AN 1 AN 2.5 AN FAIL MKAY',
        "VISIBLE MAEK 3.99 A NUMBR\nVISIBLE MAEK 2 A NUMBAR\nVISIBLE MAEK 0 A TROOF",
        'VISIBLE ALL OF WIN AN 1 AN "x" MKAY\nVISIBLE ANY OF FAIL AN 0 MKAY',
        "VISIBLE SQUAR OF 7\nVISIBLE UNSQUAR OF 81\nVISIBLE FLIP OF 8",
        "VISIBLE BOTH SAEM 2 AN 2.0\nVISIBLE DIFFRINT 2 AN 3",
        "VISIBLE BIGGER 4 AN 2\nVISIBLE SMALLR 4 AN 2",
        "VISIBLE WON OF WIN AN WIN\nVISIBLE NOT FAIL",
        "I HAS A x ITZ 2\nBOTH SAEM x AN 2, O RLY?\nYA RLY,\n  VISIBLE 1\nNO WAI\n  VISIBLE 0\nOIC",
        "I HAS A x ITZ 3\nBOTH SAEM x AN 1, O RLY?\nYA RLY,\n  VISIBLE 1\nMEBBE BOTH SAEM x AN 3\n  VISIBLE 3\nNO WAI\n  VISIBLE 0\nOIC",
        "2\nWTF?\nOMG 1\n  VISIBLE 1\nOMG 2\n  VISIBLE 2\nOMG 3\n  VISIBLE 3\n  GTFO\nOMGWTF\n  VISIBLE 9\nOIC",
        "7\nWTF?\nOMG 1\n  VISIBLE 1\nOMGWTF\n  VISIBLE 9\nOIC",
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n  VISIBLE i\nIM OUTTA YR l",
        "IM IN YR l NERFIN YR i WILE BIGGER i AN -4\n  VISIBLE i\nIM OUTTA YR l",
        "IM IN YR a UPPIN YR i TIL BOTH SAEM i AN 3\n  IM IN YR b UPPIN YR j TIL BOTH SAEM j AN 2\n    VISIBLE SUM OF PRODUKT OF i AN 10 AN j\n  IM OUTTA YR b\nIM OUTTA YR a",
        "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 5\na'Z 2 R 42\nVISIBLE a'Z 2 a'Z 0",
        "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 3\na'Z 0 R 1.5\nVISIBLE a'Z 0",
        "HOW IZ I fact YR n\n  BOTH SAEM n AN 0, O RLY?\n  YA RLY,\n    FOUND YR 1\n  OIC\n  FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\nIF U SAY SO\nVISIBLE I IZ fact YR 6 MKAY",
        "HOW IZ I f\n  SUM OF 40 AN 2\nIF U SAY SO\nVISIBLE I IZ f MKAY",
        "I HAS A g ITZ 1\nHOW IZ I bump\n  g R SUM OF g AN 1\n  FOUND YR g\nIF U SAY SO\nVISIBLE I IZ bump MKAY\nVISIBLE g",
        'I HAS A pe ITZ 7\nVISIBLE "id=:{pe}."',
        "I HAS A x ITZ 3.5\nx IS NOW A NUMBR\nVISIBLE x",
        "SUM OF 1 AN 2\nVISIBLE IT",
        'VISIBLE SUM OF "3" AN "4"\nVISIBLE SUM OF "1.5" AN 1',
        'VISIBLE "a:)b:>c"',
        "VISIBLE NOT 0\nVISIBLE NOT 0.0\nVISIBLE NOT \"\"",
    ]

    @pytest.mark.parametrize("body", CASES, ids=range(len(CASES)))
    def test_case(self, body):
        diff_check(body)


class TestDifferentialParallel:
    def test_identity(self):
        diff_check('VISIBLE ME "/" MAH FRENZ', n_pes=4)

    def test_ring_put(self):
        body = (
            "WE HAS A a ITZ SRSLY A NUMBR\n"
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "a R SUM OF ME AN 1\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, UR b R MAH a\nHUGZ\n"
            "VISIBLE SUM OF a AN b"
        )
        diff_check(body, n_pes=4)

    def test_whole_array_transfer(self):
        body = (
            "WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n"
            "  array'Z i R SUM OF PRODUKT OF ME AN 100 AN i\n"
            "IM OUTTA YR l\nHUGZ\n"
            "I HAS A local ITZ LOTZ A NUMBRS AN THAR IZ 8\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, MAH local R UR array\n"
            "VISIBLE local'Z 0 \" \" local'Z 7"
        )
        diff_check(body, n_pes=3)

    def test_locks(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "  IM SRSLY MESIN WIF x\n"
            "  TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
            "  DUN MESIN WIF x\n"
            "IM OUTTA YR l\nHUGZ\n"
            "BOTH SAEM ME AN 0, O RLY?\nYA RLY,\n  VISIBLE x\nOIC"
        )
        rc = diff_check(body, n_pes=4)
        assert rc.outputs[0] == "40\n"

    def test_trylock_sets_it(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM MESIN WIF x\nVISIBLE IT\nDUN MESIN WIF x"
        )
        diff_check(body, n_pes=1)

    def test_random_streams_match(self):
        # Both paths draw from ctx.rng, so seeded streams agree.
        diff_check("VISIBLE WHATEVR\nVISIBLE WHATEVAR", n_pes=3, seed=11)

    def test_block_predication(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "WE HAS A y ITZ SRSLY A NUMBR\n"
            "x R ME\ny R PRODUKT OF ME AN 2\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "I HAS A s ITZ A NUMBR\n"
            "TXT MAH BFF k AN STUFF\n"
            "  s R SUM OF UR x AN UR y\n"
            "TTYL\n"
            "VISIBLE s"
        )
        diff_check(body, n_pes=4)

    def test_nbody_fixed_matches(self, example_path):
        src = example_path("nbody2d_fixed.lol").read_text()
        ri = run_lolcode(src, 2, seed=3)
        rc = run_lolcode(src, 2, seed=3, engine="compiled")
        assert ri.outputs == rc.outputs


class TestCompiledOnProcesses:
    @pytest.mark.procs
    def test_compiled_process_executor(self):
        body = (
            "WE HAS A a ITZ SRSLY A NUMBR\n"
            "a R PRODUKT OF ME AN 3\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "I HAS A got ITZ A NUMBR\n"
            "TXT MAH BFF k, got R UR a\n"
            "VISIBLE got"
        )
        r = run_lolcode(
            lol(body), 3, executor="process", engine="compiled",
            barrier_timeout=60,
        )
        assert r.outputs == ["3\n", "6\n", "0\n"]


class TestEnginePromotion:
    """The compiled backend as a first-class engine: deprecated shim,
    traceback filenames, and the bounded compile cache."""

    def test_run_compiled_shim_warns_and_delegates(self):
        src = lol("VISIBLE SUM OF ME AN 10")
        with pytest.warns(DeprecationWarning, match="engine='compiled'"):
            r = run_compiled(src, 2, seed=1)
        assert r.outputs == ["10\n", "11\n"]

    def test_compiled_rejects_max_steps_free_srs_via_launcher(self):
        # First-class engine selection must reject interpret-only
        # constructs in the *caller*, not from inside a worker thread.
        with pytest.raises(CompileError, match="SRS"):
            run_lolcode(
                lol('I HAS A x ITZ 1\nVISIBLE SRS "x"'), 1, engine="compiled"
            )

    def test_load_pe_main_threads_filename(self):
        py = compile_python(lol("VISIBLE 1"), filename="kernels/demo.lol")
        fn = load_pe_main(py, "kernels/demo.lol")
        assert fn.__code__.co_filename.startswith(
            "<compiled kernels/demo.lol#"
        )
        assert "lolcode-compiled" in load_pe_main(py).__code__.co_filename

    def test_linecache_entries_unique_per_program(self):
        # Two different programs compiled under the same filename (the
        # "<string>" default) must not clobber each other's registered
        # generated source — the content hash keeps the names distinct.
        import linecache

        py_a = compile_python(lol("VISIBLE 1"))
        py_b = compile_python(lol('VISIBLE "totally different"'))
        fn_a = load_pe_main(py_a)
        fn_b = load_pe_main(py_b)
        name_a = fn_a.__code__.co_filename
        name_b = fn_b.__code__.co_filename
        assert name_a != name_b
        assert linecache.cache[name_a][2] == py_a.splitlines(True)
        assert linecache.cache[name_b][2] == py_b.splitlines(True)

    def test_linecache_registry_is_bounded(self):
        from repro.compiler.py_backend import (
            _LINECACHE_LIMIT,
            _LINECACHE_NAMES,
        )

        for i in range(_LINECACHE_LIMIT + 10):
            load_pe_main(compile_python(lol(f"VISIBLE {i + 100000}")))
        assert len(_LINECACHE_NAMES) <= _LINECACHE_LIMIT
        import linecache

        registered = [n for n in linecache.cache if n.startswith("<compiled ")]
        assert len(registered) <= _LINECACHE_LIMIT

    def test_runtime_tracebacks_quote_generated_source(self):
        # Frames from inside the generated module must carry the real
        # .lol path *and* quote the generated Python line (registered
        # with linecache), not an unrelated line of LOLCODE text.
        import traceback

        from repro.lang.errors import LolError

        try:
            run_lolcode(
                lol("VISIBLE QUOSHUNT OF 1 AN 0"),
                1,
                engine="compiled",
                filename="kernels/div0.lol",
            )
        except LolError as exc:
            # the launcher wraps the PE error; the worker frames hang
            # off __cause__
            cause = exc.__cause__ or exc
            frames = [
                f
                for f in traceback.extract_tb(cause.__traceback__)
                if "kernels/div0.lol" in f.filename
            ]
            assert frames, "no traceback frame names the .lol source"
            assert frames[0].filename.startswith("<compiled kernels/div0.lol#")
            assert "_binop" in (frames[0].line or "")
        else:  # pragma: no cover
            pytest.fail("expected LolError")

    def test_compiled_cache_keyed_by_filename(self):
        compile_python_cached.cache_clear()
        src = lol("VISIBLE 2")
        a = compile_python_cached(src, "a.lol")
        b = compile_python_cached(src, "b.lol")
        assert a is not b
        assert a.__code__.co_filename.startswith("<compiled a.lol#")
        assert b.__code__.co_filename.startswith("<compiled b.lol#")
        assert compile_python_cached(src, "a.lol") is a

    def test_compiled_cache_is_bounded(self):
        compile_python_cached.cache_clear()
        maxsize = compile_python_cached.cache_info().maxsize
        assert maxsize is not None, "compile cache must be bounded"
        for i in range(maxsize + 8):
            compile_python_cached(lol(f"VISIBLE {i}"), f"gen{i}.lol")
        assert compile_python_cached.cache_info().currsize <= maxsize

    def test_compiled_cache_shared_across_thread_pes(self):
        compile_python_cached.cache_clear()
        src = lol("VISIBLE SUM OF ME AN 1")
        run_lolcode(src, 4, seed=1, engine="compiled")
        info = compile_python_cached.cache_info()
        assert info.misses == 1  # compiled once (launcher pre-warm)...
        assert info.hits >= 4  # ...shared by every PE
        run_lolcode(src, 4, seed=1, engine="compiled")
        assert compile_python_cached.cache_info().misses == 1

    def test_traced_and_untraced_compiles_are_distinct(self):
        # FLOP accounting is baked in at compile time, so the tracing
        # flag is part of the cache identity — and traced flop totals
        # match the interpreters exactly (see test_engine_differential).
        compile_python_cached.cache_clear()
        src = lol("VISIBLE SQUAR OF 3")
        run_lolcode(src, 1, engine="compiled")
        run_lolcode(src, 1, engine="compiled", trace=True)
        assert compile_python_cached.cache_info().misses == 2
