"""Concurrent ``run_lolcode`` callers — the precondition the execution
service relies on.

The service's scheduler runs jobs on worker threads, mixing engines and
executors freely; these tests pin down that ``run_lolcode`` is safe to
call concurrently from multiple threads (shared compile caches, shared
default pool, independent worlds) and that results match the
single-threaded baseline bit for bit.
"""

import threading

import pytest

from repro import run_lolcode
from repro.compiler.py_backend import compile_python_cached

from .conftest import lol

pytestmark = pytest.mark.service

RING = lol(
    "WE HAS A x ITZ SRSLY A NUMBR\n"
    "x R PRODUKT OF ME AN 7\n"
    "HUGZ\n"
    "I HAS A nxt ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "TXT MAH BFF nxt AN STUFF\n"
    "  VISIBLE UR x\n"
    "TTYL\n"
)
SEQ = lol(
    "I HAS A acc ITZ 0\n"
    "IM IN YR spin UPPIN YR i TIL BOTH SAEM i AN 200\n"
    "  acc R SUM OF acc AN PRODUKT OF i AN i\n"
    "IM OUTTA YR spin\n"
    "VISIBLE acc"
)


def _run_matrix(matrix, repeats=2):
    """Run every (source, n_pes, engine, executor) cell from its own
    thread, ``repeats`` threads per cell; returns {cell: [outputs...]}
    plus a list of raised exceptions."""
    results = {}
    errors = []
    mutex = threading.Lock()

    def one(cell):
        source, n_pes, engine, executor = cell
        try:
            out = run_lolcode(
                source, n_pes, engine=engine, executor=executor, seed=11
            ).outputs
            with mutex:
                results.setdefault(cell, []).append(out)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            with mutex:
                errors.append(f"{cell}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=one, args=(cell,))
        for cell in matrix
        for _ in range(repeats)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    return results, errors


class TestConcurrentRunLolcode:
    def test_mixed_engines_thread_executor(self):
        matrix = [
            (src, n_pes, engine, "thread")
            for src in (RING, SEQ)
            for n_pes in (1, 4)
            for engine in ("closure", "ast", "compiled")
        ]
        results, errors = _run_matrix(matrix)
        assert not errors, errors
        for cell, outs in results.items():
            source, n_pes, engine, executor = cell
            expected = run_lolcode(
                source, n_pes, engine=engine, executor=executor, seed=11
            ).outputs
            assert all(o == expected for o in outs), f"{cell} diverged"

    @pytest.mark.procs
    def test_mixed_executors_including_pool(self):
        matrix = [
            (RING, 2, "closure", "thread"),
            (RING, 2, "closure", "pool"),
            (RING, 2, "ast", "pool"),
            (RING, 2, "compiled", "thread"),
            (SEQ, 1, "closure", "serial"),
            (SEQ, 1, "compiled", "pool"),
        ]
        results, errors = _run_matrix(matrix, repeats=3)
        assert not errors, errors
        baseline = run_lolcode(RING, 2, engine="closure", executor="thread",
                               seed=11).outputs
        for cell, outs in results.items():
            if cell[0] is RING:
                assert all(o == baseline for o in outs), f"{cell} diverged"

    def test_same_source_many_threads_shares_compiled_program(self):
        """All threads race one uncached source; every output matches and
        the program object is shared (the cache did its job)."""
        from repro.interp import compile_closures_cached

        compile_closures_cached.cache_clear()
        src = lol('VISIBLE "RACE ONE SOURCE"')
        results, errors = _run_matrix([(src, 2, "closure", "thread")], repeats=8)
        assert not errors, errors
        outs = results[(src, 2, "closure", "thread")]
        assert outs == [["RACE ONE SOURCE\n"] * 2] * 8
        assert compile_closures_cached.cache_info().misses == 1


class TestCompiledSingleFlight:
    """Satellite regression: the compiled backend's cache compiles (and
    ``exec``s) a source once under N concurrent identical callers."""

    def test_concurrent_identical_compiles_once(self, monkeypatch):
        import time

        from repro.compiler import py_backend

        compile_python_cached.cache_clear()
        calls = []
        mutex = threading.Lock()
        real = py_backend.compile_python

        def counting(source, filename="<string>", count_flops=False):
            with mutex:
                calls.append(filename)
            time.sleep(0.05)
            return real(source, filename, count_flops=count_flops)

        monkeypatch.setattr(py_backend, "compile_python", counting)
        src = lol('VISIBLE "PY SINGLEFLIGHT"')
        barrier = threading.Barrier(8)
        results = []

        def one():
            barrier.wait()
            results.append(compile_python_cached(src, "<sf.lol>", False))

        threads = [threading.Thread(target=one) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1, f"compiled {len(calls)} times"
        assert all(r is results[0] for r in results)
        compile_python_cached.cache_clear()

    def test_distinct_keys_do_not_serialize(self):
        flight = compile_python_cached._single_flight
        assert flight.inflight_keys() == 0
        a = compile_python_cached(lol("VISIBLE 1"), "<k1.lol>", False)
        b = compile_python_cached(lol("VISIBLE 2"), "<k2.lol>", False)
        assert a is not b
        assert flight.inflight_keys() == 0  # bookkeeping fully unwinds
