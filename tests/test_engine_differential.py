"""Differential tests: every engine against the reference tree-walker.

The closure-compilation engine must be observationally identical to the
reference tree-walker (and, where the program is compilable, to the
compiled-Python backend and the native C engine) — same VISIBLE output
per PE, same FLOP/op accounting, same RNG draw sequence.  This suite
checks that property on

* every bundled paper example at 1/2/4 PEs,
* every workload in the registry, full-matrix at 1 and 4 PEs on the
  thread executor — including ``engine="c"`` when a host C compiler
  exists (compile-time-restricted workloads and toolchain-less hosts
  must be *explicitly* skipped, never silently dropped),
* the same registry on the process and pool executors (Python engines
  only there: the native engine has exactly one execution vehicle —
  OS processes — so re-running it per Python executor re-tests the
  identical code path),
* randomized arithmetic/loop/predication programs (seeded, so failures
  reproduce),
* the ``HUGZ`` barrier and ``IM SRSLY MESIN WIF`` lock paths at 4 PEs.

Native caveat: the C binary draws ``WHATEVR`` values from rand(), not
the interpreters' seeded Mersenne Twister, so RNG-using kernels run
under the native engine (checker-style validation still applies in the
bench) but are excluded from bit-identical comparison here via
:func:`repro.compiler.native.uses_random`.
"""

import random

import pytest

from repro import run_lolcode
from repro.compiler import CompileError
from repro.compiler.native import find_cc, uses_random
from repro.launcher import ENGINES
from repro.workloads import all_workloads

from .conftest import EXAMPLES_LOL, lol

EXAMPLES = ["ring.lol", "locks.lol", "barrier.lol", "nbody2d_fixed.lol"]

WORKLOAD_NAMES = [w.name for w in all_workloads()]


def both_engines(src: str, n_pes: int, **kwargs):
    a = run_lolcode(src, n_pes, engine="ast", **kwargs)
    c = run_lolcode(src, n_pes, engine="closure", **kwargs)
    return a, c


def assert_engines_agree(src: str, n_pes: int, *, compiled: bool = False, **kwargs):
    a, c = both_engines(src, n_pes, **kwargs)
    assert a.outputs == c.outputs, (
        f"closure engine diverged from tree-walker at {n_pes} PEs"
    )
    if compiled:
        p = run_lolcode(src, n_pes, engine="compiled", **kwargs)
        assert a.outputs == p.outputs, (
            f"compiled backend diverged from interpreters at {n_pes} PEs"
        )
    return a, c


class TestPaperExamples:
    @pytest.mark.parametrize("name", EXAMPLES)
    @pytest.mark.parametrize("n_pes", [1, 2, 4])
    def test_outputs_identical_all_three_engines(self, name, n_pes):
        src = (EXAMPLES_LOL / name).read_text()
        assert_engines_agree(src, n_pes, compiled=True, seed=42)

    def test_racy_nbody_single_pe(self):
        # The racy listing is only deterministic at 1 PE; that is enough
        # to pin the closure engine to the tree-walker on it too.
        src = (EXAMPLES_LOL / "nbody2d.lol").read_text()
        assert_engines_agree(src, 1, compiled=True, seed=7)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_trace_accounting_identical(self, name):
        src = (EXAMPLES_LOL / name).read_text()
        a, c = both_engines(src, 2, seed=42, trace=True)
        p = run_lolcode(src, 2, engine="compiled", seed=42, trace=True)
        assert a.trace.total_flops() == c.trace.total_flops()
        assert a.trace.total_flops() == p.trace.total_flops()
        assert a.trace.total_remote_bytes() == c.trace.total_remote_bytes()
        assert a.trace.total_remote_bytes() == p.trace.total_remote_bytes()
        assert a.trace.summary() == c.trace.summary()
        assert a.trace.summary() == p.trace.summary()


# ---------------------------------------------------------------------------
# Full workload registry, three-way, thread and process executors.
# ---------------------------------------------------------------------------


def _engine_outputs(
    src: str, n_pes: int, executor: str, seed: int, *, native: bool = False
):
    """Run the engine matrix; returns ``({engine: outputs}, skips)``.

    A compiler-backend ``CompileError`` is a *documented* restriction
    (SRS computed identifiers, nested/symmetric declarations in
    functions); it is recorded in ``skips`` so the caller can still
    assert interpreter agreement before skip-reporting the missing
    comparison — an *interpreter* engine raising is a real failure.
    ``native=True`` additionally runs ``engine="c"`` (always on the
    process executor — native PEs are OS processes) when a host C
    compiler exists; without one the engine lands in ``skips``.
    """
    outputs = {}
    skips = {}
    kwargs = {"executor": executor, "seed": seed}
    if executor == "process":
        kwargs["barrier_timeout"] = 120
    for engine in ENGINES:
        ekw = dict(kwargs)
        if engine == "c":
            if not native:
                continue
            if find_cc() is None:
                skips[engine] = "no C compiler on host"
                continue
            ekw["executor"] = "process"
            ekw["barrier_timeout"] = 120
        try:
            outputs[engine] = run_lolcode(src, n_pes, engine=engine, **ekw).outputs
        except CompileError as exc:
            assert engine in ("compiled", "c"), (
                f"interpreter engine {engine!r} raised CompileError: {exc}"
            )
            skips[engine] = f"{engine}-engine restriction: {exc}"
    return outputs, skips


def _assert_registry_agreement(workload, src, outputs, skips, n_pes, where):
    """Shared assertion block for the registry matrix tests."""
    if not workload.deterministic and n_pes > 1:
        return  # engines ran; outputs legitimately vary (racy kernel)
    assert outputs["ast"] == outputs["closure"], (
        f"{workload.name}: closure diverged from tree-walker at {n_pes} "
        f"PEs {where}"
    )
    assert outputs["vm"] == outputs["ast"], (
        f"{workload.name}: VM engine diverged from tree-walker at "
        f"{n_pes} PEs {where}"
    )
    if "compiled" in outputs:
        assert outputs["compiled"] == outputs["ast"], (
            f"{workload.name}: compiled diverged from tree-walker at "
            f"{n_pes} PEs {where}"
        )
    if "c" in outputs and not uses_random(src):
        assert outputs["c"] == outputs["ast"], (
            f"{workload.name}: native engine diverged from tree-walker "
            f"at {n_pes} PEs {where}"
        )
    if skips:
        pytest.skip("; ".join(f"{e}: {r}" for e, r in sorted(skips.items())))


@pytest.mark.workload
class TestWorkloadRegistryMatrix:
    """Every registered workload runs bit-identically on closure, ast,
    compiled, and — where a C toolchain exists and the kernel draws no
    random values — the native C engine (or is skipped with an explicit
    reason) — the same guarantee ``lolbench`` enforces per sweep cell."""

    @pytest.mark.parametrize("n_pes", [1, 4])
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_thread_executor(self, workload, n_pes):
        from repro.workloads import get_workload

        w = get_workload(workload)
        if n_pes < w.min_pes:
            pytest.skip(f"{workload} needs >= {w.min_pes} PEs")
        src = w.source(smoke=True)
        outputs, skips = _engine_outputs(
            src, n_pes, "thread", seed=42, native=True
        )
        _assert_registry_agreement(w, src, outputs, skips, n_pes, "")

    @pytest.mark.procs
    @pytest.mark.slow
    @pytest.mark.parametrize("n_pes", [1, 4])
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_process_executor(self, workload, n_pes):
        from repro.workloads import get_workload

        w = get_workload(workload)
        if n_pes < w.min_pes:
            pytest.skip(f"{workload} needs >= {w.min_pes} PEs")
        src = w.source(smoke=True)
        outputs, skips = _engine_outputs(src, n_pes, "process", seed=42)
        _assert_registry_agreement(
            w, src, outputs, skips, n_pes, "on the process executor"
        )

    @pytest.mark.procs
    @pytest.mark.service
    @pytest.mark.parametrize("n_pes", [1, 4])
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_pool_executor(self, workload, n_pes):
        """The warm worker pool must be observationally identical to the
        other executors on every registered workload: engine agreement
        *within* the pool, and pool-vs-thread agreement for the
        reference engine.  (Not marked slow: the pool's whole point is
        that repeated jobs cost milliseconds.)"""
        from repro.workloads import get_workload

        w = get_workload(workload)
        if n_pes < w.min_pes:
            pytest.skip(f"{workload} needs >= {w.min_pes} PEs")
        src = w.source(smoke=True)
        outputs, skips = _engine_outputs(src, n_pes, "pool", seed=42)
        if w.deterministic or n_pes == 1:
            threaded = run_lolcode(
                src, n_pes, engine="ast", executor="thread", seed=42
            ).outputs
            assert outputs["ast"] == threaded, (
                f"{workload}: pool executor diverged from thread executor "
                f"at {n_pes} PEs"
            )
        _assert_registry_agreement(
            w, src, outputs, skips, n_pes, "on the pool executor"
        )


# ---------------------------------------------------------------------------
# Randomized program generation (seeded — failures reproduce exactly).
# ---------------------------------------------------------------------------

_BINOPS = ("SUM OF", "DIFF OF", "PRODUKT OF", "BIGGR OF", "SMALLR OF")
_CMPOPS = ("BOTH SAEM", "DIFFRINT", "BIGGER", "SMALLR")


def _expr(rng: random.Random, names: list[str], depth: int = 0) -> str:
    choices = ["int", "var", "me", "frenz"]
    if depth < 2:
        choices += ["bin", "bin", "mod", "square"]
    kind = rng.choice(choices)
    if kind == "int" or (kind == "var" and not names):
        return str(rng.randrange(-20, 100))
    if kind == "var":
        return rng.choice(names)
    if kind == "me":
        return "ME"
    if kind == "frenz":
        return "MAH FRENZ"
    if kind == "mod":
        # constant, non-zero modulus so no division-by-zero aborts
        return (
            f"MOD OF {_expr(rng, names, depth + 1)} AN {rng.randrange(2, 9)}"
        )
    if kind == "square":
        return f"SQUAR OF {_expr(rng, names, depth + 1)}"
    op = rng.choice(_BINOPS)
    return f"{op} {_expr(rng, names, depth + 1)} AN {_expr(rng, names, depth + 1)}"


def _random_program(seed: int) -> str:
    """A random straight-line/loop/branch program over NUMBR locals."""
    rng = random.Random(seed)
    lines: list[str] = []
    names: list[str] = []
    for i in range(rng.randrange(2, 5)):
        name = f"v{i}"
        lines.append(f"I HAS A {name} ITZ {_expr(rng, names)}")
        names.append(name)
    n_iters = rng.randrange(2, 8)
    body: list[str] = []
    for _ in range(rng.randrange(1, 4)):
        body.append(f"  {rng.choice(names)} R {_expr(rng, names + ['i'])}")
    # a data-dependent branch through IT and O RLY?
    body.append(f"  {rng.choice(_CMPOPS)} MOD OF i AN 2 AN 0")
    body.append("  O RLY?")
    body.append(f"    YA RLY, {rng.choice(names)} R {_expr(rng, names)}")
    body.append(f"    NO WAI, {rng.choice(names)} R {_expr(rng, names + ['i'])}")
    body.append("  OIC")
    lines.append(f"IM IN YR looper UPPIN YR i TIL BOTH SAEM i AN {n_iters}")
    lines.extend(body)
    lines.append("IM OUTTA YR looper")
    for name in names:
        lines.append(f"VISIBLE {name}")
    return lol("\n".join(lines))


@pytest.mark.parametrize("seed", range(25))
def test_random_arithmetic_loop_programs(seed):
    src = _random_program(seed)
    for n_pes in (1, 2):
        assert_engines_agree(src, n_pes, compiled=True, seed=seed)


def _random_predication_program(seed: int) -> str:
    """Random SPMD program exercising TXT MAH BFF / UR / HUGZ at 4 PEs."""
    rng = random.Random(seed)
    size = rng.randrange(4, 9)
    shift = rng.randrange(1, 4)
    lines = [
        f"WE HAS A shard ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {size}",
        "WE HAS A tag ITZ SRSLY A NUMBR",
        f"tag R PRODUKT OF ME AN {rng.randrange(2, 30)}",
        f"IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN {size}",
        f"  shard'Z i R SUM OF PRODUKT OF ME AN 100 AN {_expr(rng, ['i'])}",
        "IM OUTTA YR fill",
        "HUGZ",
        f"I HAS A nekst ITZ MOD OF SUM OF ME AN {shift} AN MAH FRENZ",
        "I HAS A got ITZ A NUMBR",
        "I HAS A gotag ITZ A NUMBR",
        "TXT MAH BFF nekst AN STUFF",
        f"  got R UR shard'Z {rng.randrange(0, size)}",
        "  gotag R UR tag",
        "TTYL",
        "HUGZ",
        'VISIBLE "PE :{nekst} GAVE :{got} TAGGED :{gotag}"',
    ]
    return lol("\n".join(lines))


@pytest.mark.parametrize("seed", range(12))
def test_random_predication_programs_4pes(seed):
    src = _random_predication_program(seed)
    assert_engines_agree(src, 4, compiled=True, seed=seed)


def test_lock_path_4pes():
    src = lol(
        "WE HAS A kounter ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "HUGZ\n"
        "IM IN YR bump UPPIN YR i TIL BOTH SAEM i AN 25\n"
        "  IM SRSLY MESIN WIF kounter\n"
        "  TXT MAH BFF 0, UR kounter R SUM OF UR kounter AN 1\n"
        "  DUN MESIN WIF kounter\n"
        "IM OUTTA YR bump\n"
        "HUGZ\n"
        "BOTH SAEM ME AN 0\n"
        "O RLY?\n"
        "  YA RLY, VISIBLE kounter\n"
        "OIC"
    )
    a, c = both_engines(src, 4, seed=3)
    assert a.outputs == c.outputs
    assert a.outputs[0] == "100\n"


def test_trylock_path_4pes():
    # IM MESIN WIF stores WIN/FAIL into IT; both engines must agree on
    # the *final* state even though interleavings differ, so serialize
    # with a barrier and have only PE 0 trylock.
    src = lol(
        "WE HAS A gate ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "BOTH SAEM ME AN 0\n"
        "O RLY?\n"
        "  YA RLY\n"
        "    IM MESIN WIF gate\n"
        "    O RLY?\n"
        '      YA RLY, VISIBLE "PE0 GOT TEH LOCK"\n'
        '      NO WAI, VISIBLE "PE0 MISSED"\n'
        "    OIC\n"
        "    DUN MESIN WIF gate\n"
        "OIC\n"
        "HUGZ\n"
        'VISIBLE "DUN ITZ :{gate}"'
    )
    a, c = both_engines(src, 4, seed=3)
    assert a.outputs == c.outputs
    assert "PE0 GOT TEH LOCK" in a.outputs[0]


def test_functions_and_it_semantics():
    src = lol(
        "HOW IZ I twice YR x\n"
        "  FOUND YR PRODUKT OF x AN 2\n"
        "IF U SAY SO\n"
        "HOW IZ I fallthru YR x\n"
        "  SUM OF x AN 1\n"
        "IF U SAY SO\n"
        "I HAS A a ITZ I IZ twice YR 21 MKAY\n"
        "I HAS A b ITZ I IZ fallthru YR 41 MKAY\n"
        "VISIBLE a \" \" b\n"
        "SUM OF a AN b\n"
        "VISIBLE IT"
    )
    a, c = both_engines(src, 2, seed=1)
    assert a.outputs == c.outputs
    assert a.outputs[0] == "42 42\n84\n"


def test_switch_fallthrough_and_gtfo():
    src = lol(
        "IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 4\n"
        "  i\n"
        "  WTF?\n"
        "    OMG 0\n"
        '      VISIBLE "ZERO"\n'
        "    OMG 1\n"
        '      VISIBLE "ONE"\n'
        "      GTFO\n"
        "    OMG 2\n"
        '      VISIBLE "TWO"\n'
        "    OMGWTF\n"
        '      VISIBLE "OTHER"\n'
        "  OIC\n"
        "IM OUTTA YR outer"
    )
    a, c = both_engines(src, 1, seed=1)
    assert a.outputs == c.outputs


def test_srs_computed_identifiers():
    src = lol(
        "I HAS A abc ITZ 7\n"
        'I HAS A namez ITZ "abc"\n'
        "SRS namez R 9\n"
        "VISIBLE SRS namez\n"
        "VISIBLE abc"
    )
    a, c = both_engines(src, 1, seed=1)
    assert a.outputs == c.outputs
    assert a.outputs[0] == "9\n9\n"


@pytest.mark.parametrize(
    "body",
    [
        # accumulator redeclared each iteration reads the previous binding
        "I HAS A x ITZ 1\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
        "  I HAS A x ITZ SUM OF x AN 10\n"
        "  VISIBLE x\n"
        "IM OUTTA YR l\n"
        "VISIBLE x",
        # read textually before the in-body declaration
        "I HAS A x ITZ 1\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
        "  VISIBLE x\n"
        "  I HAS A x ITZ 99\n"
        "IM OUTTA YR l",
        # re-entering a nested loop gets a fresh environment
        "I HAS A a ITZ 2\n"
        "IM IN YR o UPPIN YR i TIL BOTH SAEM i AN 2\n"
        "  IM IN YR n UPPIN YR j TIL BOTH SAEM j AN 2\n"
        "    I HAS A a ITZ SUM OF a AN 1\n"
        "    VISIBLE a\n"
        "  IM OUTTA YR n\n"
        "IM OUTTA YR o\n"
        "VISIBLE a",
    ],
    ids=["accumulator", "read-before-decl", "nested-fresh-env"],
)
def test_loop_body_redeclaration_semantics(body):
    # The tree-walker keeps one environment per loop execution; the
    # closure engine reproduces it with pre-declared fallback slots and
    # an UNDECLARED reset on loop re-entry.
    a, c = both_engines(lol(body), 1, seed=1)
    assert a.outputs == c.outputs


def test_txt_block_declarations_stay_visible():
    # The tree-walker executes TXT MAH BFF bodies in the *enclosing*
    # environment, so declarations inside the predicated block survive
    # past TTYL; the closure engine must not scope them away.
    src = lol(
        "WE HAS A s ITZ SRSLY A NUMBR\n"
        "s R PRODUKT OF ME AN 10\n"
        "HUGZ\n"
        "TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ AN STUFF,\n"
        "  I HAS A fetched ITZ UR s\n"
        "TTYL\n"
        "VISIBLE fetched"
    )
    a, c = assert_engines_agree(src, 4, seed=1)
    assert a.outputs[3] == "0\n"  # PE 3 fetched PE 0's s


def test_global_redeclaration_visible_to_functions():
    # A function reads a global that is redeclared (same shape) after
    # the call site; slot reuse must keep the first declaration's value
    # visible to the early call, exactly like the tree-walker.
    src = lol(
        "I HAS A x ITZ 1\n"
        "HOW IZ I peek\n"
        "  FOUND YR x\n"
        "IF U SAY SO\n"
        "VISIBLE I IZ peek MKAY\n"
        "I HAS A x ITZ 2\n"
        "VISIBLE I IZ peek MKAY"
    )
    a, c = both_engines(src, 1, seed=1)
    assert a.outputs == c.outputs
    assert a.outputs[0] == "1\n2\n"


def test_error_parity_undeclared_variable():
    from repro.lang.errors import LolError

    src = lol("VISIBLE never_declared")
    for engine in ("ast", "closure"):
        with pytest.raises(LolError, match="never_declared"):
            run_lolcode(src, 1, engine=engine)


def test_compiled_engine_refuses_max_steps():
    # The closure engine's max_steps fallback to the tree-walker is
    # documented; for engine="compiled" it would be a silent engine
    # swap (interpret-only programs would "succeed"), so it must raise.
    from repro.lang.errors import LolParallelError

    with pytest.raises(LolParallelError, match="max_steps"):
        run_lolcode(lol("VISIBLE 1"), 1, engine="compiled", max_steps=100)


def test_engine_validation_and_max_steps_fallback():
    from repro.lang.errors import LolError, LolParallelError

    with pytest.raises(LolParallelError, match="unknown engine"):
        run_lolcode(lol("VISIBLE 1"), 1, engine="jit")
    # The default (closure) engine refuses max_steps loudly — no silent
    # engine swap to the tree-walker.
    spin = lol("IM IN YR forever UPPIN YR i\nVISIBLE i\nIM OUTTA YR forever")
    with pytest.raises(
        LolParallelError, match="closure.*does not support max_steps"
    ):
        run_lolcode(spin, 1, max_steps=50)
    # The VM counts statement steps natively in its dispatch loop: the
    # limit fires on a spin, and a program well under the limit runs.
    with pytest.raises(LolError, match="statement steps"):
        run_lolcode(spin, 1, max_steps=50, engine="vm")
    ok = run_lolcode(lol("VISIBLE 1"), 1, max_steps=50, engine="vm")
    assert ok.output == "1\n"


def test_compiled_program_cache_shared_across_runs():
    from repro.interp import compile_closures_cached

    compile_closures_cached.cache_clear()
    src = lol("VISIBLE SUM OF ME AN 1")
    run_lolcode(src, 4, seed=1)
    info = compile_closures_cached.cache_info()
    assert info.misses == 1  # compiled once...
    assert info.hits >= 3  # ...shared by the other PEs
    run_lolcode(src, 4, seed=1)
    assert compile_closures_cached.cache_info().misses == 1
