"""Smoke tests for the runnable example scripts (they must work for a
fresh user exactly as documented in the README)."""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

pytestmark = pytest.mark.slow


def run_script(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_script("quickstart.py")
    assert "O HAI! I IZ PE 0 OF 8" in out
    assert "PE 0 HAZ c=" in out
    assert "[race detector]" in out
    assert "shmem_barrier_all" in out
    assert "ctx.barrier_all()" in out


def test_pi_monte_carlo():
    out = run_script("pi_monte_carlo.py", "--pes", "4", "--darts", "4000")
    assert "PI IZ BOUT 3." in out


def test_heat_diffusion():
    out = run_script("heat_diffusion.py", "--pes", "4", "--cells", "6", "--steps", "8")
    assert "BLOCK HEAT" in out
    assert "communication matrix" in out
    assert "Epiphany" in out


def test_nbody_scaling_small():
    out = run_script(
        "nbody_scaling.py", "--pes", "1", "2", "--particles", "6", "--steps", "2"
    )
    assert "interp[s]" in out
    assert "Cray XC40" in out
