"""Unit tests for the fault-injection core (``repro.faults``).

These exercise the plan/rule machinery in-process — serialization,
selectors, counters, determinism, retry policy.  End-to-end seeded
chaos against the real pool/scheduler/server lives in
``tests/test_chaos.py``.
"""

import pytest

from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFaultError,
    NO_RETRY,
    RetryPolicy,
    activate,
    active_plan,
    deactivate,
    fault_stats,
    inject,
    is_retryable,
    plan_from_rules,
    reset_faults,
)
from repro.faults.plan import _det_unit

pytestmark = pytest.mark.service


@pytest.fixture(autouse=True)
def _disarm():
    """Every test starts and ends in the never-armed state."""
    reset_faults()
    yield
    reset_faults()


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultRule(site="pool.nonsense", kind="kill")

    def test_unsupported_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="does not support kind"):
            FaultRule(site="native.build", kind="kill")

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault rule fields"):
            FaultRule.from_dict({"site": "pool.reply", "kind": "kill", "pe": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(FaultPlanError, match="missing field"):
            FaultRule.from_dict({"site": "pool.reply"})

    def test_dict_roundtrip(self):
        rule = FaultRule(
            site="pool.reply", kind="delay", rank=2, hits=(1, 3), delay_s=0.1
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = plan_from_rules(
            7,
            [
                {"site": "pool.reply", "kind": "kill", "rank": 0, "jobs": [1]},
                {"site": "server.conn", "kind": "drop", "p": 0.5},
            ],
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fault plan JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="must be a JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_env_roundtrip(self, monkeypatch):
        plan = plan_from_rules(3, [{"site": "native.build", "kind": "fail"}])
        env = plan.env()
        assert set(env) == {ENV_VAR}
        monkeypatch.setenv(ENV_VAR, env[ENV_VAR])
        assert FaultPlan.from_env() == plan

    def test_from_env_absent_is_none(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None


class TestInject:
    def test_disarmed_is_none_and_stats_none(self):
        assert inject("pool.reply", rank=0) is None
        assert fault_stats() is None

    def test_always_fires_without_selector(self):
        activate(plan_from_rules(0, [{"site": "server.conn", "kind": "drop"}]))
        assert inject("server.conn").kind == "drop"
        assert inject("server.conn").kind == "drop"

    def test_hits_selector(self):
        activate(
            plan_from_rules(
                0, [{"site": "server.conn", "kind": "drop", "hits": [2]}]
            )
        )
        assert inject("server.conn") is None
        assert inject("server.conn") is not None
        assert inject("server.conn") is None

    def test_rank_filter(self):
        activate(
            plan_from_rules(
                0, [{"site": "pool.reply", "kind": "kill", "rank": 1}]
            )
        )
        assert inject("pool.reply", rank=0) is None
        assert inject("pool.reply", rank=1) is not None

    def test_jobs_selector_ignores_arrival_index(self):
        activate(
            plan_from_rules(
                0, [{"site": "pool.job_send", "kind": "drop", "jobs": [3]}]
            )
        )
        for _ in range(5):  # arrival index is irrelevant to a jobs rule
            assert inject("pool.job_send", job=2) is None
        assert inject("pool.job_send", job=3) is not None

    def test_times_caps_total_fires(self):
        activate(
            plan_from_rules(
                0, [{"site": "server.conn", "kind": "drop", "times": 2}]
            )
        )
        fired = [inject("server.conn") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_p_draws_are_deterministic(self):
        def pattern():
            activate(
                plan_from_rules(
                    11, [{"site": "server.conn", "kind": "drop", "p": 0.4}]
                )
            )
            return [inject("server.conn") is not None for _ in range(50)]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)  # p=0.4 actually selects

    def test_p_depends_on_seed(self):
        def pattern(seed):
            activate(
                plan_from_rules(
                    seed, [{"site": "server.conn", "kind": "drop", "p": 0.4}]
                )
            )
            return [inject("server.conn") is not None for _ in range(50)]

        assert pattern(1) != pattern(2)

    def test_first_matching_rule_wins(self):
        activate(
            plan_from_rules(
                0,
                [
                    {"site": "pool.reply", "kind": "delay", "rank": 0},
                    {"site": "pool.reply", "kind": "kill"},
                ],
            )
        )
        assert inject("pool.reply", rank=0).kind == "delay"
        assert inject("pool.reply", rank=1).kind == "kill"

    def test_stats_counters(self):
        activate(
            plan_from_rules(
                0, [{"site": "server.conn", "kind": "drop", "hits": [1]}]
            )
        )
        inject("server.conn")
        inject("server.conn")
        stats = fault_stats()
        assert stats["armed"] is True
        assert stats["arrivals"] == {"server.conn": 2}
        assert stats["fires"] == {"server.conn:drop": 1}
        deactivate()
        assert active_plan() is None
        assert fault_stats()["armed"] is False  # counters survive disarm

    def test_det_unit_is_content_keyed(self):
        a = _det_unit(5, "retry", 1)
        assert a == _det_unit(5, "retry", 1)
        assert a != _det_unit(5, "retry", 2)
        assert a != _det_unit(6, "retry", 1)
        assert 0.0 <= a < 1.0


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base=0.1,
            backoff_factor=2.0,
            max_backoff=0.3,
            jitter=0.0,
        )
        delays = [policy.delay(a) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.25)
        d = policy.delay(1, seed=9)
        assert d == policy.delay(1, seed=9)
        assert 0.1 <= d <= 0.1 * 1.25
        assert policy.delay(1, seed=9) != policy.delay(1, seed=10)

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1

    def test_describe_shape(self):
        desc = RetryPolicy().describe()
        assert desc["max_attempts"] == 3
        assert set(desc) == {
            "max_attempts",
            "backoff_base_s",
            "backoff_factor",
            "max_backoff_s",
            "jitter",
        }


class TestRetryability:
    def test_plain_exceptions_are_not_retryable(self):
        assert not is_retryable(ValueError("nope"))

    def test_injected_fault_is_retryable_and_names_the_site(self):
        rule = FaultRule(site="pool.job_send", kind="drop", rank=1)
        exc = InjectedFaultError(rule)
        assert is_retryable(exc)
        assert exc.site == "pool.job_send"
        assert "pool.job_send" in str(exc) and "drop" in str(exc)

    def test_typed_errors_carry_the_protocol(self):
        from repro.compiler.native import (
            NativeBuildError,
            NativeBuildTransientError,
        )
        from repro.service.client import ServerUnavailableError
        from repro.service.pool import StragglerTimeoutError, WorkerCrashError
        from repro.service.scheduler import QueueFullError

        assert is_retryable(WorkerCrashError("w"))
        assert is_retryable(NativeBuildTransientError("n"))
        assert is_retryable(QueueFullError("q", 0.5))
        assert is_retryable(
            ServerUnavailableError("s", mid_request=False)
        )
        # Deliberate non-members: program-shaped failures must never be
        # silently re-run.
        assert not is_retryable(NativeBuildError("cc rejected codegen"))
        assert not is_retryable(StragglerTimeoutError("deadlock?"))
