"""Formatter round-trip tests: parse(format(parse(src))) == parse(src)."""

import pytest

from repro.lang import parse
from repro.lang.formatter import format_program, format_source

from .conftest import EXAMPLES_LOL, lol


def roundtrip(src: str):
    prog1 = parse(src)
    formatted = format_program(prog1)
    prog2 = parse(formatted)
    assert prog1 == prog2, f"round-trip changed the AST:\n{formatted}"
    return formatted


CASES = [
    "VISIBLE 1",
    'VISIBLE "HAI " 42 "!"',
    'VISIBLE "a :: b :" c :) d :> e"',
    "I HAS A x",
    "I HAS A x ITZ 5",
    "I HAS A x ITZ A NUMBR AN ITZ ME",
    "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001",
    "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 32",
    "WE HAS A p ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT",
    "x R 5",
    "arr'Z SUM OF i AN 1 R 5",
    "x IS NOW A YARN",
    "GIMMEH x",
    "CAN HAS STDIO?",
    "SUM OF 1 AN PRODUKT OF 2 AN 3",
    "ALL OF WIN AN FAIL AN WIN MKAY",
    'SMOOSH "a" AN 1 MKAY',
    "MAEK 3.7 A NUMBR",
    "NOT BOTH SAEM x AN y",
    "BIGGER x AN SMALLR y AN z",
    "WIN, O RLY?\nYA RLY,\n  VISIBLE 1\nMEBBE FAIL\n  VISIBLE 2\nNO WAI\n  VISIBLE 3\nOIC",
    "1\nWTF?\nOMG 1\n  VISIBLE 1\n  GTFO\nOMGWTF\n  VISIBLE 9\nOIC",
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n  VISIBLE i\nIM OUTTA YR l",
    "IM IN YR l NERFIN YR i WILE BIGGER i AN 0\nIM OUTTA YR l",
    "IM IN YR l\n  GTFO\nIM OUTTA YR l",
    "HOW IZ I add YR a AN YR b\n  FOUND YR SUM OF a AN b\nIF U SAY SO\nVISIBLE I IZ add YR 1 AN YR 2 MKAY",
    "HOW IZ I z\n  FOUND YR 0\nIF U SAY SO\nVISIBLE I IZ z MKAY",
    "HUGZ",
    "IM SRSLY MESIN WIF x\nDUN MESIN WIF x",
    "IM MESIN WIF UR x",
    "TXT MAH BFF k, MAH x R UR y",
    "TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ AN STUFF\n  UR x R 1\nTTYL",
    "VISIBLE WHATEVR WHATEVAR",
    "VISIBLE SQUAR OF UNSQUAR OF FLIP OF 2",
    'I HAS A pe ITZ 1\nVISIBLE "id :{pe} done"',
    'VISIBLE SRS "x"',
    "IT",
]


@pytest.mark.parametrize("body", CASES, ids=range(len(CASES)))
def test_roundtrip_case(body):
    roundtrip(lol(body))


@pytest.mark.parametrize(
    "name", ["nbody2d.lol", "nbody2d_fixed.lol", "ring.lol", "locks.lol", "barrier.lol"]
)
def test_roundtrip_examples(name):
    src = (EXAMPLES_LOL / name).read_text()
    roundtrip(src)


def test_format_is_idempotent():
    src = (EXAMPLES_LOL / "nbody2d.lol").read_text()
    once = format_source(src)
    twice = format_source(once)
    assert once == twice


def test_formatted_output_runs_identically():
    from repro import run_lolcode

    src = (EXAMPLES_LOL / "barrier.lol").read_text()
    formatted = format_source(src)
    r1 = run_lolcode(src, 4, seed=1)
    r2 = run_lolcode(formatted, 4, seed=1)
    assert r1.outputs == r2.outputs


def test_version_preserved():
    assert format_source("HAI 1.2\nKTHXBYE\n").startswith("HAI 1.2")
    assert format_source("HAI\nKTHXBYE\n").startswith("HAI\n")
