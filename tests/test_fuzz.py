"""The coverage-guided differential fuzzer (repro.fuzz).

The load-bearing test is the planted-bug drill: monkeypatch the VM
compiler to mis-fold its ADD superinstruction (constant off by one),
then assert the fuzzer *finds* the divergence within a fixed number of
seeded iterations and that the delta-debugger shrinks the repro below a
size bound.  Everything here is seeded and deterministic.
"""

import json

import pytest

from repro.fuzz import (
    Fuzzer,
    GenConfig,
    Outcome,
    generate_program,
    minimize_program,
    mutate_program,
    program_size,
    run_differential,
)
from repro.fuzz.cli import lolfuzz_main
from repro.fuzz.diff import classify_exception, lint_gate
from repro.interp import compile_vm_cached
from repro.lang import ast
from repro.lang.errors import LolError
from repro.lang.formatter import format_program
from repro.lang.parser import parse
from repro.vm import compile as vm_compile
from repro.vm import isa

pytestmark = pytest.mark.fuzz

GEN_SEEDS = range(25)


# ---------------------------------------------------------------------------
# Generator validity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GEN_SEEDS)
def test_generated_program_round_trips(seed):
    program = generate_program(seed)
    source = format_program(program)
    assert parse(source) == program, f"seed {seed} not parse-stable"


def test_generated_programs_mostly_pass_lint():
    passed = sum(
        1
        for seed in GEN_SEEDS
        if lint_gate(format_program(generate_program(seed))) is None
    )
    # The grammar is built to emit lint-clean SPMD programs; a low pass
    # rate means the fuzzer wastes its budget on discards.
    assert passed >= len(GEN_SEEDS) * 0.8, f"only {passed}/{len(GEN_SEEDS)} lint-clean"


def test_generation_is_deterministic():
    assert generate_program(11) == generate_program(11)
    assert generate_program(11) != generate_program(12)


@pytest.mark.parametrize("seed", [0, 3, 9])
def test_mutants_stay_well_formed(seed):
    import random

    parent = generate_program(seed)
    for child_seed in range(6):
        child = mutate_program(parent, random.Random(child_seed), GenConfig())
        source = format_program(child)
        assert parse(source) == child


# ---------------------------------------------------------------------------
# Differential harness + outcome classification
# ---------------------------------------------------------------------------


def test_clean_candidates_do_not_diverge():
    for seed in (1, 4, 7):
        source = format_program(generate_program(seed))
        result = run_differential(source, 2, seed=0)
        assert result.status in ("ok", "discarded"), result.divergences
        if result.status == "ok":
            assert result.opcode_counts is not None
            assert sum(result.opcode_counts) > 0


def test_outcome_comparable_ignores_detail():
    a = Outcome("error", error_class="LolTypeError", detail="at line 3")
    b = Outcome("error", error_class="LolTypeError", detail="at line 9")
    assert a.comparable() == b.comparable()
    assert a.comparable() != Outcome("error", error_class="LolMathError").comparable()
    assert Outcome("ok", outputs=("1\n",)).comparable() != Outcome(
        "ok", outputs=("2\n",)
    ).comparable()


def test_classify_exception_buckets():
    assert classify_exception(RuntimeError("PE 1 failed to terminate")).kind == "hang"
    assert classify_exception(RuntimeError("barrier broken")).kind == "hang"
    assert classify_exception(RuntimeError("exceeded 100 statement steps")).kind == "stepout"
    out = classify_exception(LolError("boom"))
    assert out.kind == "error" and out.error_class == "LolError"


def test_lint_gate_discards_divergent_barrier():
    hangy = "HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY,\n  HUGZ\nOIC\nKTHXBYE\n"
    reason = lint_gate(hangy)
    assert reason is not None and reason.startswith("lint:")


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------


def test_minimizer_shrinks_to_predicate_core():
    program = generate_program(2)
    before = program_size(program)

    def has_visible(p):
        return any(isinstance(s, ast.Visible) for s in p.body)

    small = minimize_program(program, has_visible)
    assert has_visible(small)
    assert program_size(small) < before
    # the 1-statement fixpoint: nothing but a VISIBLE should survive
    assert sum(1 for s in small.body if isinstance(s, ast.Visible)) >= 1


# ---------------------------------------------------------------------------
# Determinism of the whole loop
# ---------------------------------------------------------------------------


def _run_fuzzer(**kw):
    fuzzer = Fuzzer(seed=7, n_pes=2, **kw)
    stats = fuzzer.run(iterations=12)
    d = stats.as_dict()
    d.pop("elapsed_s")
    return d, [f.source for f in fuzzer.findings]


def test_fuzzer_is_deterministic():
    first = _run_fuzzer()
    second = _run_fuzzer()
    assert first == second


# ---------------------------------------------------------------------------
# The planted-bug drill (the reason this subsystem exists)
# ---------------------------------------------------------------------------


def _plant_add_sc_misfold():
    """Wrap the VM compiler so the first ADD_SC constant is off by one."""
    real = vm_compile.compile_program_vm

    def buggy(program, **kw):
        vmp = real(program, **kw)
        code = list(vmp.co.code)
        for i, ins in enumerate(code):
            if ins[0] == isa.ADD_SC:
                code[i] = (ins[0], ins[1], ins[2], ins[3] + 1)
                vmp.co.code = tuple(code)
                break
        return vmp

    return buggy


def test_fuzzer_finds_planted_vm_misfold(monkeypatch, tmp_path):
    monkeypatch.setattr(vm_compile, "compile_program_vm", _plant_add_sc_misfold())
    compile_vm_cached.cache_clear()
    try:
        fuzzer = Fuzzer(seed=3, n_pes=2, corpus_dir=tmp_path, minimize_checks=120)
        stats = fuzzer.run(iterations=25, stop_after=1)
        assert fuzzer.findings, f"planted bug not found in {stats.iterations} iters"
        finding = fuzzer.findings[0]
        # the bug lives in the VM pipeline, so vm (and/or the profiled
        # vm-steps gate) must be among the diverging engines
        assert any(e.startswith("vm") for e in finding.engines), finding.engines
        assert finding.kind == "value"
        # the delta-debugger must shrink the repro to something readable
        minimized = parse(finding.minimized_source)
        assert program_size(minimized) <= 60, format_program(minimized)
        # and the corpus entry must replay: same seed, still divergent
        saved = sorted(tmp_path.glob("*.lol"))
        assert saved, "minimized repro was not written to the corpus"
        meta = json.loads(saved[0].with_suffix(".json").read_text())
        assert meta["kind"] == "value"
        replay = run_differential(
            saved[0].read_text(), meta["n_pes"], seed=meta["seed"], skip_lint=True
        )
        assert replay.status == "divergent"
    finally:
        compile_vm_cached.cache_clear()


def test_planted_bug_vanishes_when_unplanted():
    # The exact candidate that trips the planted bug is clean on HEAD —
    # i.e. the drill above detects the plant, not a latent real bug.
    fuzzer = Fuzzer(seed=3, n_pes=2)
    stats = fuzzer.run(iterations=25)
    assert not fuzzer.findings
    assert stats.divergences == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_gen_prints_program(capsys):
    assert lolfuzz_main(["gen", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("HAI 1.2")
    assert parse(out) == generate_program(5)


def test_cli_run_smoke(tmp_path, capsys):
    rc = lolfuzz_main(
        ["run", "--iterations", "6", "-np", "2", "-q",
         "--corpus", str(tmp_path / "corpus"), "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["iterations"] == 6
    assert payload["stats"]["divergences"] == 0
    assert payload["findings"] == []


def test_cli_minimize_rejects_clean_program(tmp_path, capsys):
    src = tmp_path / "clean.lol"
    src.write_text(format_program(generate_program(1)))
    assert lolfuzz_main(["minimize", str(src), "-np", "2"]) == 4
