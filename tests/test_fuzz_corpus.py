"""Replay the golden fuzz corpus: every entry must run divergence-free.

``tests/golden/fuzz/`` holds minimized fuzzer findings that have
graduated into permanent regression tests (plus a few clean generator
seeds pinning cross-engine agreement on feature-rich programs).  Each
``.lol`` file is replayed through the full differential pipeline with
the engine list, PE count, and seed recorded in its ``.json`` sidecar —
all engines must agree, bit for bit.
"""

import pathlib

import pytest

from repro.fuzz.corpus import iter_corpus, load_entry, replay_entry

pytestmark = pytest.mark.fuzz

CORPUS_DIR = pathlib.Path(__file__).parent / "golden" / "fuzz"
ENTRIES = sorted(CORPUS_DIR.glob("*.lol"))


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 4


def test_every_entry_has_a_sidecar():
    for lol in ENTRIES:
        sidecar = lol.with_suffix(".json")
        assert sidecar.exists(), f"{lol.name} is missing its metadata sidecar"
        meta = load_entry(lol).meta
        assert meta.get("engines"), f"{lol.name} sidecar lacks an engine list"
        assert "note" in meta or "detail" in meta


@pytest.mark.parametrize("lol_path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(lol_path):
    entry = load_entry(lol_path)
    result = replay_entry(entry)
    assert result.status == "ok", (
        f"{lol_path.name}: {result.status} ({result.reason}); "
        + "; ".join(d.describe() for d in result.divergences)
    )
    assert result.divergences == []


def test_iter_corpus_sees_every_entry():
    assert [e.path for e in iter_corpus(CORPUS_DIR)] == ENTRIES
