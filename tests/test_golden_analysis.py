"""Golden-file snapshots of the static analyzer's diagnostics.

Each ``tests/golden/analysis/<case>.lol`` is linted and the rendered
diagnostics (fix-it lines included) are diffed against the checked-in
``<case>.diag`` snapshot — ``(clean)`` for cases that must stay
silent.  The corpus pins the path-sensitivity upgrades in place:

* a barrier under a *uniform* branch no longer warns, a divergent
  mismatch still does;
* a lock released on *every* path no longer triggers ``W103``; the
  missed-path, double-acquire, and divergent-acquire variants do;
* the Figure 2 race flags (with its insert-``HUGZ`` fix-it) and its
  ``HUGZ``-fixed twin is silent.

An intentional diagnostic change regenerates the snapshots with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_analysis.py

and the diff is reviewed like any other source change.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.lang.checker import check_source

CORPUS = pathlib.Path(__file__).resolve().parent / "golden" / "analysis"
CASES = sorted(p.stem for p in CORPUS.glob("*.lol"))

#: cases that must produce no diagnostics at all
MUST_BE_CLEAN = {
    "uniform_branch_barrier",
    "divergent_aligned_barriers",
    "lock_released_every_path",
    "trylock_spin",
    "figure2_fixed",
    "dynamic_unlock",
}


def render(path: pathlib.Path) -> str:
    source = path.read_text(encoding="utf-8")
    diags = check_source(source, filename=path.name)
    if not diags:
        return "(clean)\n"
    return "".join(d.render_text() + "\n" for d in diags)


@pytest.mark.parametrize("case", CASES)
def test_diagnostics_match_golden(case):
    lol = CORPUS / f"{case}.lol"
    golden = CORPUS / f"{case}.diag"
    rendered = render(lol)
    if os.environ.get("UPDATE_GOLDEN"):
        golden.write_text(rendered, encoding="utf-8")
        pytest.skip(f"regenerated {golden.name}")
    assert golden.exists(), (
        f"missing snapshot {golden}; regenerate with UPDATE_GOLDEN=1"
    )
    assert rendered == golden.read_text(encoding="utf-8")


@pytest.mark.parametrize("case", sorted(MUST_BE_CLEAN))
def test_clean_cases_stay_clean(case):
    # independent of the snapshots: these cases embody the
    # false-positive fixes and must never regress to warning
    assert render(CORPUS / f"{case}.lol") == "(clean)\n"


def test_corpus_is_complete():
    assert MUST_BE_CLEAN <= set(CASES)
    assert len(CASES) >= 12
