"""Golden-file snapshots of the C backend's output.

Three representative registry kernels (ring shift, heat1d stencil,
tree_reduce) are compiled at a fixed launch width and diffed against
checked-in snapshots under ``tests/golden/``.  Fresh-name counters
(``__tmpN``/``__swN``/``__mN``/``__nN``) are normalised so unrelated
codegen churn does not invalidate the files; everything else —
prelude, symmetric declarations, shmem call shapes, control flow — is
pinned byte-for-byte.

An intentional codegen change regenerates the snapshots with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_c.py

and the diff is then reviewed like any other source change.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

from repro.compiler import compile_c
from repro.workloads import get_workload

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: (workload, n_pes) per snapshot; smoke params keep the sources small.
SNAPSHOTS = [
    ("ring", 4),
    ("heat1d", 4),
    ("tree_reduce", 4),
]

_FRESH = re.compile(r"__(tmp|sw|m|n)\d+\b")


def normalize(c_source: str) -> str:
    """Make emitted C stable under fresh-name counter shifts."""
    return _FRESH.sub(lambda m: f"__{m.group(1)}N", c_source)


@pytest.mark.parametrize("workload, n_pes", SNAPSHOTS)
def test_emitted_c_matches_golden(workload, n_pes):
    w = get_workload(workload)
    source = w.source(smoke=True)
    emitted = normalize(
        compile_c(source, f"<workload:{workload}>", n_pes=n_pes)
    )
    golden_path = GOLDEN_DIR / f"{workload}_np{n_pes}.c"
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(emitted)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing snapshot {golden_path}; regenerate with UPDATE_GOLDEN=1"
    )
    assert emitted == golden_path.read_text(), (
        f"emitted C for {workload!r} drifted from its snapshot; if the "
        f"change is intentional, regenerate with UPDATE_GOLDEN=1 and "
        f"review the diff"
    )
