"""Unit tests for the interpreter environment chain and the symmetric
heap cell types."""

import numpy as np
import pytest

from repro.interp.env import Binding, Env
from repro.lang.errors import LolNameError, LolRuntimeError
from repro.lang.types import LolType
from repro.shmem.heap import ArrayCell, NumpyScalarCell, ScalarCell, SymmetricPlan
from repro.lang.errors import LolParallelError


class TestEnv:
    def test_declare_and_lookup(self):
        env = Env()
        env.declare("x", Binding(5))
        assert env.lookup("x").value == 5

    def test_chain_lookup(self):
        parent = Env()
        parent.declare("x", Binding(1))
        child = parent.child()
        assert child.lookup("x").value == 1

    def test_shadowing(self):
        parent = Env()
        parent.declare("x", Binding(1))
        child = parent.child()
        child.declare("x", Binding(2))
        assert child.lookup("x").value == 2
        assert parent.lookup("x").value == 1

    def test_child_writes_visible_through_binding(self):
        parent = Env()
        b = Binding(1)
        parent.declare("x", b)
        child = parent.child()
        child.lookup("x").value = 9
        assert parent.lookup("x").value == 9

    def test_missing_name(self):
        with pytest.raises(LolNameError):
            Env().lookup("ghost")

    def test_redeclaration_replaces(self):
        env = Env()
        env.declare("x", Binding(1))
        env.declare("x", Binding("now a yarn"))
        assert env.lookup("x").value == "now a yarn"

    def test_is_declared(self):
        env = Env()
        assert not env.is_declared("x")
        env.declare("x", Binding())
        assert env.is_declared("x")


class TestScalarCell:
    def test_read_write(self):
        cell = ScalarCell(0)
        cell.write(42)
        assert cell.read() == 42

    def test_numpy_backed_scalar(self):
        buf = np.zeros(1, dtype="int64")
        cell = NumpyScalarCell(buf, LolType.NUMBR)
        cell.write(7)
        assert cell.read() == 7
        assert isinstance(cell.read(), int)

    def test_numpy_troof_scalar(self):
        buf = np.zeros(1, dtype="bool")
        cell = NumpyScalarCell(buf, LolType.TROOF)
        cell.write(True)
        assert cell.read() is True


class TestArrayCell:
    def test_numeric_array_typed_reads(self):
        cell = ArrayCell(LolType.NUMBR, 4)
        cell.write(0, 5)
        v = cell.read(0)
        assert v == 5 and isinstance(v, int)

    def test_numbar_array(self):
        cell = ArrayCell(LolType.NUMBAR, 2)
        cell.write(1, 2.5)
        assert isinstance(cell.read(1), float)

    def test_yarn_array_list_backed(self):
        cell = ArrayCell(LolType.YARN, 3)
        cell.write(2, "cat")
        assert cell.read(2) == "cat"
        assert cell.read(0) == ""

    def test_bounds_checking(self):
        cell = ArrayCell(LolType.NUMBR, 2)
        with pytest.raises(LolRuntimeError):
            cell.read(2)
        with pytest.raises(LolRuntimeError):
            cell.read(-1)
        with pytest.raises(LolRuntimeError):
            cell.write(5, 1)

    def test_non_integer_index_rejected(self):
        cell = ArrayCell(LolType.NUMBR, 2)
        with pytest.raises(LolRuntimeError):
            cell.read("zero")

    def test_read_all_is_copy(self):
        cell = ArrayCell(LolType.NUMBR, 2)
        cell.write(0, 9)
        snapshot = cell.read_all()
        snapshot[0] = 0
        assert cell.read(0) == 9

    def test_write_all_length_check(self):
        cell = ArrayCell(LolType.YARN, 2)
        with pytest.raises(LolRuntimeError):
            cell.write_all(["a", "b", "c"])

    def test_nbytes(self):
        assert ArrayCell(LolType.NUMBAR, 10).nbytes == 80


class TestSymmetricPlan:
    def test_add_and_conflict(self):
        plan = SymmetricPlan()
        plan.add("x", LolType.NUMBR, False, 1, False)
        plan.add("x", LolType.NUMBR, False, 1, False)  # idempotent
        with pytest.raises(LolParallelError):
            plan.add("x", LolType.NUMBAR, False, 1, False)
