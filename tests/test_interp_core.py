"""Interpreter tests for the core LOLCODE 1.2 semantics (paper Table I)."""

import pytest

from repro.lang.errors import (
    LolNameError,
    LolRuntimeError,
    LolSyntaxError,
    LolTypeError,
)

from .conftest import run1


class TestVisible:
    def test_string(self):
        assert run1('VISIBLE "HAI WORLD"') == "HAI WORLD\n"

    def test_numbr(self):
        assert run1("VISIBLE 42") == "42\n"

    def test_numbar_two_decimals(self):
        assert run1("VISIBLE 3.14159") == "3.14\n"

    def test_troof(self):
        assert run1("VISIBLE WIN") == "WIN\n"
        assert run1("VISIBLE FAIL") == "FAIL\n"

    def test_noob_prints_empty(self):
        assert run1("I HAS A x\nVISIBLE x") == "\n"

    def test_concatenation(self):
        assert run1('VISIBLE "a" 1 "b"') == "a1b\n"

    def test_bang_suppresses_newline(self):
        assert run1('VISIBLE "x"!\nVISIBLE "y"') == "xy\n"

    def test_interpolation(self):
        assert run1('I HAS A pe ITZ 3\nVISIBLE "pe=:{pe}!"') == "pe=3!\n"


class TestVariables:
    def test_declare_and_assign(self):
        assert run1("I HAS A x\nx R 5\nVISIBLE x") == "5\n"

    def test_declare_with_init(self):
        assert run1("I HAS A x ITZ 7\nVISIBLE x") == "7\n"

    def test_undeclared_read_fails(self):
        with pytest.raises(LolNameError):
            run1("VISIBLE nope")

    def test_undeclared_assign_fails(self):
        with pytest.raises(LolNameError):
            run1("nope R 5")

    def test_dynamic_retyping(self):
        assert run1('I HAS A x ITZ 1\nx R "yarn now"\nVISIBLE x') == "yarn now\n"

    def test_uninitialised_is_noob(self):
        assert run1("I HAS A x\nBOTH SAEM x AN NOOB\nVISIBLE IT") == "WIN\n"

    def test_srs_read(self):
        assert run1('I HAS A x ITZ 9\nVISIBLE SRS "x"') == "9\n"

    def test_srs_write(self):
        assert run1('I HAS A x\nSRS "x" R 4\nVISIBLE x') == "4\n"

    def test_srs_computed_name(self):
        src = (
            "I HAS A cat1 ITZ 11\n"
            'I HAS A name ITZ SMOOSH "cat" AN 1 MKAY\n'
            "VISIBLE SRS name"
        )
        assert run1(src) == "11\n"


class TestStaticTyping:
    def test_default_values(self):
        assert run1("I HAS A x ITZ SRSLY A NUMBR\nVISIBLE x") == "0\n"
        assert run1("I HAS A x ITZ SRSLY A NUMBAR\nVISIBLE x") == "0.00\n"
        assert run1("I HAS A x ITZ SRSLY A YARN\nVISIBLE x") == "\n"
        assert run1("I HAS A x ITZ SRSLY A TROOF\nVISIBLE x") == "FAIL\n"

    def test_numeric_coercion_on_assign(self):
        assert run1("I HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x") == "3\n"
        assert run1("I HAS A x ITZ SRSLY A NUMBAR\nx R 2\nVISIBLE x") == "2.00\n"

    def test_yarn_into_numbr_rejected(self):
        with pytest.raises(LolTypeError):
            run1('I HAS A x ITZ SRSLY A NUMBR\nx R "cat"')

    def test_typed_init_coerces(self):
        assert run1("I HAS A x ITZ A NUMBAR AN ITZ 1\nVISIBLE x") == "1.00\n"


class TestArithmetic:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("SUM OF 2 AN 3", "5"),
            ("DIFF OF 2 AN 3", "-1"),
            ("PRODUKT OF 4 AN 3", "12"),
            ("QUOSHUNT OF 7 AN 2", "3"),
            ("QUOSHUNT OF -7 AN 2", "-3"),  # C truncation toward zero
            ("MOD OF 7 AN 3", "1"),
            ("MOD OF -7 AN 3", "-1"),  # C remainder semantics
            ("BIGGR OF 4 AN 9", "9"),
            ("SMALLR OF 4 AN 9", "4"),
        ],
    )
    def test_integer_ops(self, src, expected):
        assert run1(f"VISIBLE {src}") == expected + "\n"

    def test_float_promotion(self):
        assert run1("VISIBLE SUM OF 1 AN 0.5") == "1.50\n"

    def test_float_division(self):
        assert run1("VISIBLE QUOSHUNT OF 1.0 AN 4") == "0.25\n"

    def test_yarn_operand_parses(self):
        assert run1('VISIBLE SUM OF "3" AN 4') == "7\n"

    def test_troof_operand(self):
        assert run1("VISIBLE SUM OF WIN AN 4") == "5\n"

    def test_division_by_zero(self):
        with pytest.raises(LolRuntimeError):
            run1("VISIBLE QUOSHUNT OF 1 AN 0")

    def test_mod_by_zero(self):
        with pytest.raises(LolRuntimeError):
            run1("VISIBLE MOD OF 1 AN 0")

    def test_non_numeric_yarn_rejected(self):
        with pytest.raises(LolTypeError):
            run1('VISIBLE SUM OF "cat" AN 1')


class TestComparisons:
    def test_both_saem(self):
        assert run1("VISIBLE BOTH SAEM 2 AN 2") == "WIN\n"
        assert run1("VISIBLE BOTH SAEM 2 AN 3") == "FAIL\n"

    def test_numeric_cross_type_equality(self):
        assert run1("VISIBLE BOTH SAEM 2 AN 2.0") == "WIN\n"

    def test_yarn_vs_numbr_not_equal(self):
        assert run1('VISIBLE BOTH SAEM "2" AN 2') == "FAIL\n"

    def test_diffrint(self):
        assert run1("VISIBLE DIFFRINT 2 AN 3") == "WIN\n"

    def test_paper_bigger_smallr(self):
        assert run1("VISIBLE BIGGER 3 AN 2") == "WIN\n"
        assert run1("VISIBLE SMALLR 3 AN 2") == "FAIL\n"

    def test_yarn_equality(self):
        assert run1('VISIBLE BOTH SAEM "cat" AN "cat"') == "WIN\n"


class TestBooleans:
    def test_both_of(self):
        assert run1("VISIBLE BOTH OF WIN AN WIN") == "WIN\n"
        assert run1("VISIBLE BOTH OF WIN AN FAIL") == "FAIL\n"

    def test_either_of(self):
        assert run1("VISIBLE EITHER OF FAIL AN WIN") == "WIN\n"

    def test_won_of(self):
        assert run1("VISIBLE WON OF WIN AN WIN") == "FAIL\n"
        assert run1("VISIBLE WON OF WIN AN FAIL") == "WIN\n"

    def test_not(self):
        assert run1("VISIBLE NOT FAIL") == "WIN\n"

    def test_all_any(self):
        assert run1("VISIBLE ALL OF WIN AN WIN AN FAIL MKAY") == "FAIL\n"
        assert run1("VISIBLE ANY OF FAIL AN WIN MKAY") == "WIN\n"

    def test_truthiness_casts(self):
        assert run1("VISIBLE NOT 0") == "WIN\n"
        assert run1('VISIBLE NOT ""') == "WIN\n"
        assert run1("VISIBLE NOT 0.0") == "WIN\n"
        assert run1('VISIBLE NOT "x"') == "FAIL\n"


class TestStrings:
    def test_smoosh(self):
        assert run1('VISIBLE SMOOSH "a" AN 1 AN WIN MKAY') == "a1WIN\n"

    def test_escape_newline(self):
        assert run1('VISIBLE "a:)b"') == "a\nb\n"


class TestCasting:
    def test_maek_float_to_int(self):
        assert run1("VISIBLE MAEK 3.7 A NUMBR") == "3\n"

    def test_maek_yarn_to_numbar(self):
        assert run1('VISIBLE SUM OF MAEK "2.5" A NUMBAR AN 0') == "2.50\n"

    def test_maek_to_troof(self):
        assert run1("VISIBLE MAEK 0 A TROOF") == "FAIL\n"
        assert run1("VISIBLE MAEK 5 A TROOF") == "WIN\n"

    def test_is_now_a(self):
        assert run1("I HAS A x ITZ 3.9\nx IS NOW A NUMBR\nVISIBLE x") == "3\n"

    def test_maek_noob_explicit(self):
        assert run1("VISIBLE MAEK NOOB A NUMBR") == "0\n"

    def test_bad_yarn_cast(self):
        with pytest.raises(LolTypeError):
            run1('VISIBLE MAEK "dog" A NUMBR')


class TestIt:
    def test_bare_expression_sets_it(self):
        assert run1("SUM OF 1 AN 2\nVISIBLE IT") == "3\n"

    def test_it_starts_noob(self):
        assert run1("BOTH SAEM IT AN NOOB\nVISIBLE IT") == "WIN\n"


class TestIfElse:
    def test_ya_rly(self):
        assert run1('WIN, O RLY?\nYA RLY,\n  VISIBLE "y"\nNO WAI\n  VISIBLE "n"\nOIC') == "y\n"

    def test_no_wai(self):
        assert run1('FAIL, O RLY?\nYA RLY,\n  VISIBLE "y"\nNO WAI\n  VISIBLE "n"\nOIC') == "n\n"

    def test_mebbe(self):
        src = (
            "I HAS A x ITZ 2\n"
            "BOTH SAEM x AN 1, O RLY?\n"
            "YA RLY,\n  VISIBLE 1\n"
            "MEBBE BOTH SAEM x AN 2\n  VISIBLE 2\n"
            "NO WAI\n  VISIBLE 3\nOIC"
        )
        assert run1(src) == "2\n"

    def test_condition_casts_to_troof(self):
        assert run1('5, O RLY?\nYA RLY,\n  VISIBLE "t"\nOIC') == "t\n"


class TestSwitch:
    def test_match_with_gtfo(self):
        src = (
            "I HAS A x ITZ 2\nx\nWTF?\n"
            "OMG 1\n  VISIBLE 1\n  GTFO\n"
            "OMG 2\n  VISIBLE 2\n  GTFO\n"
            "OMGWTF\n  VISIBLE 9\nOIC"
        )
        assert run1(src) == "2\n"

    def test_fallthrough(self):
        src = (
            "1\nWTF?\n"
            "OMG 1\n  VISIBLE 1\n"
            "OMG 2\n  VISIBLE 2\n  GTFO\n"
            "OMGWTF\n  VISIBLE 9\nOIC"
        )
        assert run1(src) == "1\n2\n"

    def test_default(self):
        src = "99\nWTF?\nOMG 1\n  VISIBLE 1\nOMGWTF\n  VISIBLE 9\nOIC"
        assert run1(src) == "9\n"

    def test_yarn_cases(self):
        src = '"b"\nWTF?\nOMG "a"\n  VISIBLE 1\n  GTFO\nOMG "b"\n  VISIBLE 2\n  GTFO\nOIC'
        assert run1(src) == "2\n"


class TestLoops:
    def test_uppin_til(self):
        src = (
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 3\n"
            "  VISIBLE i\nIM OUTTA YR loop"
        )
        assert run1(src) == "0\n1\n2\n"

    def test_nerfin_wile(self):
        src = (
            "I HAS A i\n"
            "IM IN YR loop NERFIN YR j WILE BIGGER j AN -3\n"
            "  VISIBLE j\nIM OUTTA YR loop"
        )
        assert run1(src) == "0\n-1\n-2\n"

    def test_gtfo_breaks(self):
        src = (
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 100\n"
            "  BOTH SAEM i AN 2, O RLY?\n  YA RLY,\n    GTFO\n  OIC\n"
            "  VISIBLE i\nIM OUTTA YR loop"
        )
        assert run1(src) == "0\n1\n"

    def test_loop_var_is_loop_local(self):
        src = (
            "I HAS A i ITZ 99\n"
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\nIM OUTTA YR loop\n"
            "VISIBLE i"
        )
        assert run1(src) == "99\n"

    def test_body_never_runs_if_til_true(self):
        src = (
            "IM IN YR loop UPPIN YR i TIL WIN\n  VISIBLE i\nIM OUTTA YR loop\n"
            'VISIBLE "done"'
        )
        assert run1(src) == "done\n"

    def test_infinite_loop_without_gtfo_rejected(self):
        with pytest.raises(LolRuntimeError):
            run1("IM IN YR loop\n  VISIBLE 1\nIM OUTTA YR loop", max_steps=50)

    def test_nested_loop_counters(self):
        src = (
            "IM IN YR outer UPPIN YR i TIL BOTH SAEM i AN 2\n"
            "  IM IN YR inner UPPIN YR j TIL BOTH SAEM j AN 2\n"
            '    VISIBLE i "-" j\n'
            "  IM OUTTA YR inner\n"
            "IM OUTTA YR outer"
        )
        assert run1(src) == "0-0\n0-1\n1-0\n1-1\n"


class TestFunctions:
    def test_found_yr(self):
        src = (
            "HOW IZ I add YR a AN YR b\n  FOUND YR SUM OF a AN b\nIF U SAY SO\n"
            "VISIBLE I IZ add YR 2 AN YR 3 MKAY"
        )
        assert run1(src) == "5\n"

    def test_call_before_definition(self):
        src = (
            "VISIBLE I IZ two MKAY\n"
            "HOW IZ I two\n  FOUND YR 2\nIF U SAY SO"
        )
        assert run1(src) == "2\n"

    def test_fallthrough_returns_it(self):
        src = "HOW IZ I f\n  SUM OF 1 AN 1\nIF U SAY SO\nVISIBLE I IZ f MKAY"
        assert run1(src) == "2\n"

    def test_gtfo_returns_noob(self):
        src = (
            "HOW IZ I f\n  GTFO\n  FOUND YR 1\nIF U SAY SO\n"
            "VISIBLE BOTH SAEM I IZ f MKAY AN NOOB"
        )
        assert run1(src) == "WIN\n"

    def test_params_shadow_globals(self):
        src = (
            "I HAS A a ITZ 10\n"
            "HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\n"
            "VISIBLE I IZ f YR 1 MKAY\nVISIBLE a"
        )
        assert run1(src) == "1\n10\n"

    def test_globals_readable_in_function(self):
        src = (
            "I HAS A g ITZ 5\n"
            "HOW IZ I f\n  FOUND YR g\nIF U SAY SO\n"
            "VISIBLE I IZ f MKAY"
        )
        assert run1(src) == "5\n"

    def test_wrong_arity(self):
        src = "HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\nI IZ f MKAY"
        with pytest.raises(LolRuntimeError):
            run1(src)

    def test_unknown_function(self):
        with pytest.raises(LolNameError):
            run1("I IZ nope MKAY")

    def test_recursion(self):
        src = (
            "HOW IZ I fact YR n\n"
            "  BOTH SAEM n AN 0, O RLY?\n"
            "  YA RLY,\n    FOUND YR 1\n"
            "  OIC\n"
            "  FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\n"
            "IF U SAY SO\n"
            "VISIBLE I IZ fact YR 5 MKAY"
        )
        assert run1(src) == "120\n"

    def test_it_saved_across_call(self):
        src = (
            "HOW IZ I f\n  99\nIF U SAY SO\n"
            "42\nI IZ f MKAY\nVISIBLE IT"
        )
        # The call's body sets the callee's IT; the caller's IT becomes
        # the call's value (expression statement), which is 99 here via
        # fallthrough. So IT is 99.
        assert run1(src) == "99\n"


class TestArrays:
    def test_local_array_rw(self):
        src = (
            "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "a'Z 0 R 10\na'Z 3 R 13\nVISIBLE a'Z 0 " " a'Z 3"
        )
        assert run1(src) == "1013\n"

    def test_array_default_zero(self):
        src = "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 2\nVISIBLE a'Z 1"
        assert run1(src) == "0.00\n"

    def test_index_out_of_range(self):
        src = "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE a'Z 5"
        with pytest.raises(LolRuntimeError):
            run1(src)

    def test_negative_index_rejected(self):
        src = "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE a'Z -1"
        with pytest.raises(LolRuntimeError):
            run1(src)

    def test_element_type_coercion(self):
        src = "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\na'Z 0 R 2.9\nVISIBLE a'Z 0"
        assert run1(src) == "2\n"

    def test_yarn_array(self):
        src = (
            "I HAS A a ITZ LOTZ A YARNS AN THAR IZ 2\n"
            'a\'Z 0 R "cat"\nVISIBLE a\'Z 0'
        )
        assert run1(src) == "cat\n"

    def test_dynamic_size(self):
        src = (
            "I HAS A n ITZ 3\n"
            "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ SUM OF n AN 1\n"
            "a'Z 3 R 7\nVISIBLE a'Z 3"
        )
        assert run1(src) == "7\n"

    def test_scalar_read_of_array_rejected(self):
        src = "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE SUM OF a AN 1"
        with pytest.raises(LolTypeError):
            run1(src)

    def test_indexing_scalar_rejected(self):
        src = "I HAS A x ITZ 5\nVISIBLE x'Z 0"
        with pytest.raises(LolTypeError):
            run1(src)


class TestCanHas:
    def test_known_libraries(self):
        assert run1("CAN HAS STDIO?\nVISIBLE 1") == "1\n"

    def test_unknown_library(self):
        with pytest.raises(LolRuntimeError):
            run1("CAN HAS WINDOWS?")


class TestGimmeh:
    def test_reads_yarn(self):
        from repro import run_lolcode

        result = run_lolcode(
            'HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE "got " x\nKTHXBYE',
            1,
            stdin_lines=[["hello"]],
        )
        assert result.output == "got hello\n"

    def test_exhausted_input(self):
        with pytest.raises(LolRuntimeError):
            run1("I HAS A x\nGIMMEH x")
