"""Tests for the Table III extensions: WHATEVR, WHATEVAR, SQUAR OF,
UNSQUAR OF, FLIP OF — plus their use in the n-body kernel shape."""

import math

import pytest

from repro.lang.errors import LolRuntimeError

from .conftest import run1, runp


class TestRandom:
    def test_whatevr_is_nonnegative_int(self):
        out = run1("I HAS A r ITZ WHATEVR\nVISIBLE BOTH SAEM r AN MAEK r A NUMBR")
        assert out == "WIN\n"

    def test_whatevr_range(self):
        # rand() semantics: 0 <= r < 2^31-1
        out = run1(
            "I HAS A r ITZ WHATEVR\n"
            "VISIBLE BOTH OF NOT SMALLR r AN 0 AN SMALLR r AN 2147483647"
        )
        assert out == "WIN\n"

    def test_whatevar_in_unit_interval(self):
        out = run1(
            "I HAS A r ITZ WHATEVAR\n"
            "VISIBLE BOTH OF NOT SMALLR r AN 0.0 AN SMALLR r AN 1.0"
        )
        assert out == "WIN\n"

    def test_sequences_differ(self):
        out = run1("VISIBLE DIFFRINT WHATEVAR AN WHATEVAR")
        assert out == "WIN\n"


class TestMathOps:
    def test_squar_of_int_stays_int(self):
        assert run1("VISIBLE SQUAR OF 5") == "25\n"

    def test_squar_of_float(self):
        assert run1("VISIBLE SQUAR OF 1.5") == "2.25\n"

    def test_unsquar_of(self):
        assert run1("VISIBLE UNSQUAR OF 16") == "4.00\n"

    def test_unsquar_of_non_perfect(self):
        out = float(run1("VISIBLE UNSQUAR OF 2"))
        assert abs(out - math.sqrt(2)) < 0.01

    def test_unsquar_negative_rejected(self):
        with pytest.raises(LolRuntimeError):
            run1("VISIBLE UNSQUAR OF -1")

    def test_flip_of(self):
        assert run1("VISIBLE FLIP OF 4") == "0.25\n"

    def test_flip_of_zero_rejected(self):
        with pytest.raises(LolRuntimeError):
            run1("VISIBLE FLIP OF 0")

    def test_flip_of_flip(self):
        assert run1("VISIBLE FLIP OF FLIP OF 8") == "8.00\n"

    def test_inverse_square_law_shape(self):
        # The n-body inner kernel: f = (1/d) * (1/d)^2 = d^-3
        src = (
            "I HAS A d ITZ 2.0\n"
            "I HAS A inv_d ITZ FLIP OF UNSQUAR OF SQUAR OF d\n"
            "I HAS A f ITZ PRODUKT OF inv_d AN SQUAR OF inv_d\n"
            "VISIBLE f"
        )
        assert run1(src) == "0.12\n"  # 1/8 = 0.125 -> "0.12" (2 dp)

    def test_composition_with_sum(self):
        # FLIP OF UNSQUAR OF SUM OF dx AN dy (exactly the n-body line)
        src = (
            "I HAS A dx ITZ 9.0\nI HAS A dy ITZ 16.0\n"
            "VISIBLE FLIP OF UNSQUAR OF SUM OF dx AN dy"
        )
        assert run1(src) == "0.20\n"


class TestSeededStreams:
    def test_pe_streams_deterministic(self):
        r1 = runp("VISIBLE WHATEVAR", 4, seed=99)
        r2 = runp("VISIBLE WHATEVAR", 4, seed=99)
        assert r1.outputs == r2.outputs

    def test_seed_changes_stream(self):
        r1 = runp("VISIBLE WHATEVR", 2, seed=1)
        r2 = runp("VISIBLE WHATEVR", 2, seed=2)
        assert r1.outputs != r2.outputs
