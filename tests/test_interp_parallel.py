"""Interpreter tests for the parallel/distributed extensions (Table II)."""

import pytest

from repro import run_lolcode
from repro.lang.errors import LolParallelError

from .conftest import lol, runp


class TestEnumeration:
    def test_me_and_mah_frenz(self):
        r = runp('VISIBLE ME "/" MAH FRENZ', 4)
        assert r.outputs == ["0/4\n", "1/4\n", "2/4\n", "3/4\n"]

    def test_serial_context_identity(self):
        r = runp('VISIBLE ME "/" MAH FRENZ', 1)
        assert r.output == "0/1\n"


class TestSymmetricVariables:
    def test_partitions_are_distinct(self):
        # Each PE writes ME into its copy; no cross-talk without TXT.
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R ME\nHUGZ\nVISIBLE x"
        )
        r = runp(body, 4)
        assert r.outputs == ["0\n", "1\n", "2\n", "3\n"]

    def test_untyped_symmetric_rejected(self):
        with pytest.raises(LolParallelError):
            runp("WE HAS A x\nVISIBLE 1", 2)

    def test_remote_get(self):
        # Every PE reads PE 0's x.
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R PRODUKT OF ME AN 10\nHUGZ\n"
            "I HAS A y ITZ A NUMBR\n"
            "TXT MAH BFF 0, y R UR x\n"
            "VISIBLE y"
        )
        r = runp(body, 3)
        assert r.outputs == ["0\n", "0\n", "0\n"]

    def test_remote_put(self):
        # PE 0 writes 99 into everyone's x.
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "BOTH SAEM ME AN 0, O RLY?\n"
            "YA RLY,\n"
            "  IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
            "    TXT MAH BFF k, UR x R 99\n"
            "  IM OUTTA YR l\n"
            "OIC\n"
            "HUGZ\nVISIBLE x"
        )
        r = runp(body, 3)
        assert r.outputs == ["99\n", "99\n", "99\n"]

    def test_symmetric_init_is_local(self):
        body = "WE HAS A x ITZ SRSLY A NUMBR AN ITZ ME\nHUGZ\nVISIBLE x"
        r = runp(body, 3)
        assert r.outputs == ["0\n", "1\n", "2\n"]


class TestPredication:
    def test_single_statement_form(self):
        body = (
            "WE HAS A a ITZ SRSLY A NUMBR\n"
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "a R ME\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, UR b R MAH a\n"
            "HUGZ\nVISIBLE b"
        )
        # PE i writes its a (=i) into b of PE i+1.
        r = runp(body, 4)
        assert r.outputs == ["3\n", "0\n", "1\n", "2\n"]

    def test_block_form(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "WE HAS A y ITZ SRSLY A NUMBR\n"
            "BOTH SAEM ME AN 0, O RLY?\n"
            "YA RLY,\n"
            "  TXT MAH BFF 1 AN STUFF\n"
            "    UR x R 5\n"
            "    UR y R 6\n"
            "  TTYL\n"
            "OIC\n"
            "HUGZ\nVISIBLE x " " y"
        )
        r = runp(body, 2)
        assert r.outputs[1] == "56\n"
        assert r.outputs[0] == "00\n"

    def test_paper_sum_of_two_remotes(self):
        # Section V: TXT MAH BFF k, MAH x R SUM OF UR y AN UR z
        body = (
            "WE HAS A y ITZ SRSLY A NUMBR\n"
            "WE HAS A z ITZ SRSLY A NUMBR\n"
            "I HAS A x ITZ A NUMBR\n"
            "y R PRODUKT OF ME AN 10\n"
            "z R ME\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, MAH x R SUM OF UR y AN UR z\n"
            "VISIBLE x"
        )
        r = runp(body, 3)
        # PE i reads PE (i+1): 10*(i+1) + (i+1)
        assert r.outputs == ["11\n", "22\n", "0\n"]

    def test_ur_outside_txt_rejected(self):
        body = "WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE UR x"
        with pytest.raises(LolParallelError):
            runp(body, 2)

    def test_target_pe_out_of_range(self):
        body = "WE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 99, VISIBLE UR x"
        with pytest.raises(LolParallelError):
            runp(body, 2)

    def test_ur_on_non_symmetric_rejected(self):
        body = "I HAS A x ITZ 1\nTXT MAH BFF 0, VISIBLE UR x"
        with pytest.raises(LolParallelError):
            runp(body, 2)

    def test_mah_explicitly_local(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R ME\nHUGZ\n"
            "TXT MAH BFF 0, VISIBLE MAH x"
        )
        r = runp(body, 3)
        assert r.outputs == ["0\n", "1\n", "2\n"]

    def test_nested_predication_inner_wins(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R ME\nHUGZ\n"
            "BOTH SAEM ME AN 0, O RLY?\n"
            "YA RLY,\n"
            "  TXT MAH BFF 1 AN STUFF\n"
            "    TXT MAH BFF 2, VISIBLE UR x\n"
            "    VISIBLE UR x\n"
            "  TTYL\n"
            "OIC"
        )
        r = runp(body, 3)
        assert r.outputs[0] == "2\n1\n"


class TestSymmetricArrays:
    def test_whole_array_copy(self):
        # Section VI.A: MAH array R UR array
        body = (
            "WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n"
            "  array'Z i R SUM OF PRODUKT OF ME AN 100 AN i\n"
            "IM OUTTA YR l\n"
            "HUGZ\n"
            "I HAS A local ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, MAH local R UR array\n"
            "VISIBLE local'Z 0 " " local'Z 3"
        )
        r = runp(body, 3)
        assert r.outputs == ["100103\n", "200203\n", "03\n"]

    def test_remote_element_rw(self):
        body = (
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "BOTH SAEM ME AN 1, O RLY?\n"
            "YA RLY,\n  TXT MAH BFF 0, UR a'Z 2 R 42\n"
            "OIC\n"
            "HUGZ\nVISIBLE a'Z 2"
        )
        r = runp(body, 2)
        assert r.outputs == ["42\n", "0\n"]

    def test_symmetric_to_symmetric_copy(self):
        body = (
            "WE HAS A src ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 2\n"
            "WE HAS A dst ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 2\n"
            "src'Z 0 R ME\nsrc'Z 1 R PRODUKT OF ME AN 2\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, MAH dst R UR src\n"
            "HUGZ\nVISIBLE dst'Z 0 " " dst'Z 1"
        )
        r = runp(body, 2)
        assert r.outputs == ["12\n", "00\n"]


class TestBarrier:
    def test_hugz_orders_puts(self):
        # Figure 2 pattern: without the barrier this would be racy; with
        # it the sum is deterministic.
        body = (
            "WE HAS A a ITZ SRSLY A NUMBR\n"
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "a R SUM OF ME AN 1\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, UR b R MAH a\n"
            "HUGZ\n"
            "I HAS A c ITZ SUM OF a AN b\n"
            "VISIBLE c"
        )
        r = runp(body, 4)
        # PE i: a=i+1, b=(i-1 mod 4)+1
        assert r.outputs == ["5\n", "3\n", "5\n", "7\n"]

    def test_barrier_count_in_trace(self):
        r = runp("HUGZ\nHUGZ\nHUGZ", 3, trace=True)
        from repro.shmem import OpKind

        assert r.trace.total(OpKind.BARRIER) == 9


class TestLocks:
    def test_contended_remote_increment(self):
        # Every PE increments PE 0's x under the implied lock N times.
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "HUGZ\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 25\n"
            "  IM SRSLY MESIN WIF x\n"
            "  TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
            "  DUN MESIN WIF x\n"
            "IM OUTTA YR l\n"
            "HUGZ\nVISIBLE x"
        )
        r = runp(body, 4)
        assert r.outputs[0] == "100\n"

    def test_trylock_sets_it(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM MESIN WIF x\n"
            "VISIBLE IT\n"
            "DUN MESIN WIF x"
        )
        r = runp(body, 1)
        assert r.output == "WIN\n"

    def test_trylock_o_rly_pattern(self):
        # Table II: IM MESIN WIF [var], O RLY? / YA RLY, [code] / OIC
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM MESIN WIF x, O RLY?\n"
            "  YA RLY,\n"
            '    VISIBLE "got it"\n'
            "    DUN MESIN WIF x\n"
            "OIC"
        )
        r = runp(body, 1)
        assert r.output == "got it\n"

    def test_unlock_without_hold_rejected(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "DUN MESIN WIF x"
        )
        with pytest.raises(LolParallelError):
            runp(body, 1)

    def test_lock_unshared_variable_rejected(self):
        body = "I HAS A x ITZ 1\nIM SRSLY MESIN WIF x"
        with pytest.raises(LolParallelError):
            runp(body, 1)

    def test_lock_without_sharin_rejected(self):
        body = "WE HAS A x ITZ SRSLY A NUMBR\nIM SRSLY MESIN WIF x"
        with pytest.raises(LolParallelError):
            runp(body, 1)

    def test_reentrant_lock_rejected(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "IM SRSLY MESIN WIF x\nIM SRSLY MESIN WIF x"
        )
        with pytest.raises(LolParallelError):
            runp(body, 1)

    def test_lock_with_ur_qualifier(self):
        # Section VI.B writes IM MESIN WIF UR x inside a TXT block; the
        # lock is global so this is the same lock.
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "TXT MAH BFF 0 AN STUFF\n"
            "  IM SRSLY MESIN WIF UR x\n"
            "  UR x R SUM OF UR x AN 1\n"
            "  DUN MESIN WIF UR x\n"
            "TTYL\n"
            "HUGZ\nVISIBLE x"
        )
        r = runp(body, 2)
        assert r.outputs[0] == "2\n"


class TestErrorHandling:
    def test_pe_failure_reported_with_pe_id(self):
        body = (
            "BOTH SAEM ME AN 1, O RLY?\n"
            "YA RLY,\n  VISIBLE QUOSHUNT OF 1 AN 0\nOIC\nHUGZ"
        )
        with pytest.raises(LolParallelError, match="PE 1"):
            runp(body, 3, barrier_timeout=10)

    def test_mismatched_barriers_fail_fast(self):
        body = (
            "BOTH SAEM ME AN 0, O RLY?\n"
            "YA RLY,\n  HUGZ\nOIC"
        )
        with pytest.raises(Exception):
            runp(body, 2, barrier_timeout=2)


class TestDeterminism:
    def test_seeded_random_reproducible(self):
        body = "VISIBLE WHATEVR\nVISIBLE WHATEVAR"
        r1 = run_lolcode(lol(body), 3, seed=123)
        r2 = run_lolcode(lol(body), 3, seed=123)
        assert r1.outputs == r2.outputs

    def test_different_pes_different_streams(self):
        body = "VISIBLE WHATEVR"
        r = run_lolcode(lol(body), 4, seed=123)
        assert len(set(r.outputs)) == 4
