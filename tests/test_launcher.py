"""Tests for the SPMD launcher (repro.launcher.spmd)."""

import pytest

from repro import run_file, run_lolcode
from repro.lang.errors import LolParallelError, LolSyntaxError

from .conftest import lol


class TestRunLolcode:
    def test_default_single_pe(self):
        assert run_lolcode(lol("VISIBLE MAH FRENZ")).output == "1\n"

    def test_unknown_executor(self):
        with pytest.raises(LolParallelError):
            run_lolcode(lol("VISIBLE 1"), 1, executor="gpu")

    def test_serial_executor_requires_one_pe(self):
        with pytest.raises(LolParallelError):
            run_lolcode(lol("VISIBLE 1"), 2, executor="serial")

    def test_syntax_error_raised_before_spawn(self):
        with pytest.raises(LolSyntaxError):
            run_lolcode("HAI 1.2\nI HAS A\nKTHXBYE\n", 4)

    def test_filename_in_errors(self):
        try:
            run_lolcode("HAI 1.2\nI HAS A\nKTHXBYE\n", 1, filename="prog.lol")
        except LolSyntaxError as exc:
            assert exc.pos.filename == "prog.lol"
        else:  # pragma: no cover
            pytest.fail("expected LolSyntaxError")

    def test_run_file(self, tmp_path):
        p = tmp_path / "t.lol"
        p.write_text(lol("VISIBLE ME"))
        r = run_file(str(p), n_pes=2)
        assert r.outputs == ["0\n", "1\n"]

    def test_max_steps_propagates(self):
        from repro.lang.errors import LolError

        spin = lol("IM IN YR l UPPIN YR i WILE WIN\nIM OUTTA YR l")
        # The engines that count steps natively must actually enforce
        # the limit (not merely raise *something*); the PE failure is
        # wrapped by the executor, so match on the limit message.
        for engine in ("vm", "ast"):
            with pytest.raises(LolError, match="statement steps"):
                run_lolcode(spin, 1, max_steps=100, engine=engine)

    def test_max_steps_closure_refused_loudly(self):
        # The closure engine used to fall back silently to the
        # tree-walker under max_steps; now it refuses up front and
        # points at the engines that count steps natively.
        with pytest.raises(
            LolParallelError, match="closure.*does not support max_steps"
        ):
            run_lolcode(lol("VISIBLE 1"), 1, max_steps=100, engine="closure")

    def test_non_integral_literal_array_size_rejected(self):
        # 2.9 must not silently allocate 2 elements (the old int() path):
        # the process planner rejects at plan time, and the runtime
        # allocation paths of every engine reject identically on the
        # thread executor (no run-vs-error divergence across executors).
        from repro.lang.errors import LolError

        src = lol("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 2.9")
        with pytest.raises(LolParallelError, match="integer"):
            run_lolcode(src, 2, executor="process")
        for engine in ("closure", "ast", "compiled"):
            with pytest.raises(LolError, match="integer"):
                run_lolcode(src, 2, executor="thread", engine=engine)

    def test_non_integral_folded_array_size_rejected(self):
        # A BinOp fold landing on a non-integer (5.0 / 2 = 2.5) is just
        # as wrong as a literal 2.9.
        from repro.lang.errors import LolError

        src = lol(
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
            "QUOSHUNT OF 5.0 AN 2"
        )
        with pytest.raises(LolParallelError, match="integer"):
            run_lolcode(src, 2, executor="process")
        with pytest.raises(LolError, match="integer"):
            run_lolcode(src, 2, executor="thread")

    def test_non_integral_local_array_size_rejected_all_engines(self):
        # I HAS A (non-symmetric) arrays go through the same shared
        # to_array_size guard in all three engines.
        from repro.lang.errors import LolError

        src = lol("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2.9")
        for engine in ("closure", "ast", "compiled"):
            with pytest.raises(LolError, match="integer"):
                run_lolcode(src, 1, engine=engine)

    @pytest.mark.procs
    def test_integral_float_fold_still_allowed(self):
        # 2.5 * 2 folds to 5.0 — integral, so a legal size.
        from repro.lang.parser import parse
        from repro.launcher import const_eval

        src = lol(
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
            "PRODUKT OF 2.5 AN 2\n"
            "a'Z 4 R 7\nVISIBLE a'Z 4"
        )
        decl = parse(src).body[0]
        assert const_eval(decl.size, 2) == 5
        r = run_lolcode(src, 2, executor="process", barrier_timeout=60)
        assert r.outputs == ["7\n", "7\n"]

    def test_result_metadata(self):
        r = run_lolcode(
            lol("WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE 1"), 2, seed=1
        )
        assert r.n_pes == 2
        assert r.heap_symbols == ["x"]
        assert len(r.outputs) == 2

    def test_trace_disabled_by_default(self):
        r = run_lolcode(lol("VISIBLE 1"), 2)
        assert r.trace is None

    def test_output_property_concatenates_in_pe_order(self):
        r = run_lolcode(lol("VISIBLE ME"), 3)
        assert r.output == "0\n1\n2\n"
