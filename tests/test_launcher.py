"""Tests for the SPMD launcher (repro.launcher.spmd)."""

import pytest

from repro import run_file, run_lolcode
from repro.lang.errors import LolParallelError, LolSyntaxError

from .conftest import lol


class TestRunLolcode:
    def test_default_single_pe(self):
        assert run_lolcode(lol("VISIBLE MAH FRENZ")).output == "1\n"

    def test_unknown_executor(self):
        with pytest.raises(LolParallelError):
            run_lolcode(lol("VISIBLE 1"), 1, executor="gpu")

    def test_serial_executor_requires_one_pe(self):
        with pytest.raises(LolParallelError):
            run_lolcode(lol("VISIBLE 1"), 2, executor="serial")

    def test_syntax_error_raised_before_spawn(self):
        with pytest.raises(LolSyntaxError):
            run_lolcode("HAI 1.2\nI HAS A\nKTHXBYE\n", 4)

    def test_filename_in_errors(self):
        try:
            run_lolcode("HAI 1.2\nI HAS A\nKTHXBYE\n", 1, filename="prog.lol")
        except LolSyntaxError as exc:
            assert exc.pos.filename == "prog.lol"
        else:  # pragma: no cover
            pytest.fail("expected LolSyntaxError")

    def test_run_file(self, tmp_path):
        p = tmp_path / "t.lol"
        p.write_text(lol("VISIBLE ME"))
        r = run_file(str(p), n_pes=2)
        assert r.outputs == ["0\n", "1\n"]

    def test_max_steps_propagates(self):
        from repro.lang.errors import LolRuntimeError

        with pytest.raises((LolRuntimeError, LolParallelError)):
            run_lolcode(
                lol("IM IN YR l UPPIN YR i WILE WIN\nIM OUTTA YR l"),
                1,
                max_steps=100,
            )

    def test_result_metadata(self):
        r = run_lolcode(
            lol("WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE 1"), 2, seed=1
        )
        assert r.n_pes == 2
        assert r.heap_symbols == ["x"]
        assert len(r.outputs) == 2

    def test_trace_disabled_by_default(self):
        r = run_lolcode(lol("VISIBLE 1"), 2)
        assert r.trace is None

    def test_output_property_concatenates_in_pe_order(self):
        r = run_lolcode(lol("VISIBLE ME"), 3)
        assert r.output == "0\n1\n2\n"
