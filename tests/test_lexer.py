"""Lexer unit tests: phrase matching, continuations, comments, strings."""

import pytest

from repro.lang.errors import LolSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokType


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source) if t.type is not TokType.EOF]


def kw_values(source):
    return [t.value for t in tokenize(source) if t.type is TokType.KW]


class TestPhraseMatching:
    def test_single_word_keyword(self):
        assert kw_values("HAI") == ["HAI"]

    def test_multiword_keyword(self):
        assert kw_values("SUM OF") == ["SUM OF"]

    def test_longest_match_wins_mah_frenz(self):
        # MAH FRENZ is one keyword; MAH x is qualifier + ident.
        assert kw_values("MAH FRENZ") == ["MAH FRENZ"]
        toks = kinds("MAH x")
        assert toks[0] == (TokType.KW, "MAH")
        assert toks[1] == (TokType.IDENT, "x")

    def test_longest_match_wins_smallr_of(self):
        assert kw_values("SMALLR OF") == ["SMALLR OF"]
        assert kw_values("SMALLR x AN y") == ["SMALLR", "AN"]

    def test_im_srsly_mesin_wif(self):
        assert kw_values("IM SRSLY MESIN WIF x") == ["IM SRSLY MESIN WIF"]
        assert kw_values("IM MESIN WIF x") == ["IM MESIN WIF"]

    def test_txt_mah_bff_an_stuff(self):
        assert kw_values("TXT MAH BFF k AN STUFF") == ["TXT MAH BFF", "AN STUFF"]

    def test_declaration_phrases(self):
        vals = kw_values("WE HAS A x ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 10")
        assert vals == ["WE HAS A", "ITZ SRSLY LOTZ A", "NUMBRS", "AN THAR IZ"]

    def test_an_im_sharin_it(self):
        assert "AN IM SHARIN IT" in kw_values("x AN IM SHARIN IT")

    def test_keywords_case_sensitive(self):
        # lowercase words are identifiers, not keywords
        toks = [t for t in kinds("sum of") if t[0] is not TokType.NEWLINE]
        assert all(t[0] is TokType.IDENT for t in toks)

    def test_identifier_containing_keyword_prefix(self):
        toks = kinds("MEOW")
        assert toks[0] == (TokType.IDENT, "MEOW")

    def test_partial_phrase_falls_back_to_ident(self):
        # 'SUM' alone (without OF) is an identifier.
        toks = kinds("SUM x")
        assert toks[0] == (TokType.IDENT, "SUM")


class TestLiterals:
    def test_int(self):
        assert kinds("42")[0] == (TokType.INT, 42)

    def test_negative_int(self):
        assert kinds("-7")[0] == (TokType.INT, -7)

    def test_float(self):
        assert kinds("0.001")[0] == (TokType.FLOAT, 0.001)

    def test_negative_float(self):
        assert kinds("-2.5")[0] == (TokType.FLOAT, -2.5)

    def test_scientific(self):
        assert kinds("1e3")[0] == (TokType.FLOAT, 1000.0)

    def test_string_plain(self):
        t = kinds('"hello world"')[0]
        assert t[0] is TokType.STRING
        assert t[1] == ["hello world"]

    def test_win_fail_are_keywords(self):
        assert kw_values("WIN FAIL") == ["WIN", "FAIL"]


class TestStringEscapes:
    def test_newline(self):
        assert kinds('"a:)b"')[0][1] == ["a\nb"]

    def test_tab(self):
        assert kinds('"a:>b"')[0][1] == ["a\tb"]

    def test_quote(self):
        assert kinds('"say :"hi:""')[0][1] == ['say "hi"']

    def test_colon(self):
        assert kinds('"a::b"')[0][1] == ["a:b"]

    def test_hex(self):
        assert kinds('":(41)"')[0][1] == ["A"]

    def test_interpolation(self):
        parts = kinds('"pe :{pe} done"')[0][1]
        assert parts == ["pe ", ("interp", "pe"), " done"]

    def test_unterminated_string(self):
        with pytest.raises(LolSyntaxError):
            tokenize('"oops')

    def test_unknown_escape(self):
        with pytest.raises(LolSyntaxError):
            tokenize('":x"')

    def test_bad_hex(self):
        with pytest.raises(LolSyntaxError):
            tokenize('":(zz)"')


class TestLinesAndComments:
    def test_newline_token(self):
        toks = kinds("HAI\nKTHXBYE")
        assert (TokType.NEWLINE, "\n") in toks

    def test_comma_is_newline(self):
        toks = kinds("x, y")
        assert toks[1][0] is TokType.NEWLINE

    def test_continuation(self):
        toks = kinds("SUM OF a ...\n  AN b")
        assert all(t[0] is not TokType.NEWLINE for t in toks[:-1])

    def test_unicode_ellipsis_continuation(self):
        toks = kinds("SUM OF a …\n  AN b")
        types = [t[0] for t in toks]
        assert types.count(TokType.NEWLINE) == 1  # only the trailing one

    def test_text_after_continuation_rejected(self):
        with pytest.raises(LolSyntaxError):
            tokenize("a ... b\n")

    def test_comment_after_continuation_ok(self):
        toks = kinds("a ... BTW comment\nb")
        assert [t for t in toks if t[0] is TokType.IDENT] == [
            (TokType.IDENT, "a"),
            (TokType.IDENT, "b"),
        ]

    def test_btw_comment(self):
        toks = kinds("x BTW this is ignored\ny")
        idents = [t[1] for t in toks if t[0] is TokType.IDENT]
        assert idents == ["x", "y"]

    def test_obtw_tldr_block_comment(self):
        src = "x\nOBTW\nanything SUM OF here\nTLDR\ny\n"
        idents = [t[1] for t in kinds(src) if t[0] is TokType.IDENT]
        assert idents == ["x", "y"]

    def test_newline_runs_collapse(self):
        toks = kinds("x\n\n\n\ny")
        newlines = [t for t in toks if t[0] is TokType.NEWLINE]
        assert len(newlines) == 2  # one between, one trailing

    def test_bang_token(self):
        toks = kinds('VISIBLE "hi"!')
        assert toks[-2][0] is TokType.BANG

    def test_qmark_token(self):
        toks = kinds("O RLY?")
        assert toks[0] == (TokType.KW, "O RLY")
        assert toks[1][0] is TokType.QMARK


class TestIndexToken:
    def test_apostrophe_z(self):
        toks = kinds("arr'Z 3")
        assert toks[0] == (TokType.IDENT, "arr")
        assert toks[1] == (TokType.KW, "'Z")
        assert toks[2] == (TokType.INT, 3)

    def test_bad_apostrophe(self):
        with pytest.raises(LolSyntaxError):
            tokenize("arr'x")


class TestPositions:
    def test_line_col_tracking(self):
        toks = tokenize("HAI\n  VISIBLE x\n")
        vis = next(t for t in toks if t.is_kw("VISIBLE"))
        assert vis.pos.line == 2
        assert vis.pos.col == 3

    def test_filename_propagates(self):
        toks = tokenize("HAI", filename="prog.lol")
        assert toks[0].pos.filename == "prog.lol"
