"""Tests for the native C engine (``engine="c"``): build cache, SPMD
launch over the bundled SHMEM shim, knob refusals, and the ``lolcc``
driver.

The execution tests are marked ``requires_cc`` and skip cleanly on
hosts without a C compiler; the refusal/validation tests run anywhere
(they are rejected by the launcher before any toolchain work).
"""

from __future__ import annotations

import os
import stat
import subprocess

import pytest

from repro import run_lolcode
from repro.compiler import CompileError, NativeToolchainError
from repro.compiler import native
from repro.lang.errors import LolParallelError

from .conftest import lol


# ---------------------------------------------------------------------------
# Launcher-level validation: no toolchain needed.
# ---------------------------------------------------------------------------


def test_engine_registry_includes_c():
    from repro.launcher import ENGINES

    assert "c" in ENGINES


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"executor": "thread"}, "native OS processes"),
        ({"executor": "pool"}, "native OS processes"),
        ({"executor": "process", "max_steps": 10}, "max_steps"),
        ({"executor": "process", "trace": True}, "op tracing"),
        ({"executor": "process", "race_detection": True}, "thread executor"),
    ],
)
def test_unsupported_knobs_refused_explicitly(kwargs, match):
    # Never a silent fallback to an interpreter: each knob the native
    # engine cannot honour is a loud error in the caller.
    with pytest.raises(LolParallelError, match=match):
        run_lolcode(lol("VISIBLE 1"), 2, engine="c", **kwargs)


def test_serial_executor_requires_one_pe():
    with pytest.raises(LolParallelError, match="exactly 1 PE"):
        run_lolcode(lol("VISIBLE 1"), 4, engine="c", executor="serial")


def test_compile_restriction_surfaces_before_toolchain():
    # SRS is interpret-only; the CompileError must name the construct
    # and must surface even on hosts with no C compiler at all.
    src = lol('I HAS A x ITZ 1\nI HAS A n ITZ "x"\nVISIBLE SRS n')
    with pytest.raises(CompileError, match="SRS"):
        run_lolcode(src, 1, engine="c", executor="process")


def test_missing_toolchain_is_a_distinct_error(monkeypatch):
    monkeypatch.setattr(native, "find_cc", lambda: None)
    with pytest.raises(NativeToolchainError, match="C compiler"):
        native.build_native(lol("VISIBLE 1"))


def test_service_resolves_pool_submissions_to_process():
    from repro.service.scheduler import JobSpec, ServiceError

    spec = JobSpec.from_request({"source": lol("VISIBLE 1"), "engine": "c"})
    assert spec.executor == "process"
    spec = JobSpec.from_request(
        {"source": lol("VISIBLE 1"), "engine": "c", "executor": "pool"}
    )
    assert spec.executor == "process"
    with pytest.raises(ServiceError, match="op tracing"):
        JobSpec.from_request(
            {"source": lol("VISIBLE 1"), "engine": "c", "trace": True}
        )
    # Incompatible executors are refused at submission time, not inside
    # a worker after the job was accepted.
    with pytest.raises(ServiceError, match="native OS processes"):
        JobSpec.from_request(
            {"source": lol("VISIBLE 1"), "engine": "c", "executor": "thread"}
        )


def test_non_positive_folded_extent_is_a_compile_error():
    # DIFF OF MAH FRENZ AN 8 at 4 PEs folds to -4: the backend must
    # diagnose it (CompileError -> bench skip row), not emit `a[-4]`
    # and let cc fail the build.
    src = lol(
        "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
        "DIFF OF MAH FRENZ AN 8"
    )
    from repro.compiler import compile_c

    with pytest.raises(CompileError, match="at least 1"):
        compile_c(src, n_pes=4)


def test_cc_rejection_is_a_build_error_not_a_skip(monkeypatch, tmp_path):
    # A compiler that runs but rejects the generated C is a codegen/
    # program failure (NativeBuildError, loud), never the environment
    # skip NativeToolchainError — otherwise codegen regressions would
    # turn every bench row into a silent green skip.
    from repro.compiler import NativeBuildError

    fake_cc = tmp_path / "cc"
    fake_cc.write_text("#!/bin/sh\necho 'synthetic rejection' >&2\nexit 1\n")
    fake_cc.chmod(0o755)
    monkeypatch.setenv("LOL_CC", str(fake_cc))
    with pytest.raises(NativeBuildError, match="synthetic rejection"):
        native.build_native(lol("VISIBLE 1"))


def test_uses_random_predicate():
    assert native.uses_random(lol("I HAS A x ITZ WHATEVAR\nVISIBLE x"))
    assert not native.uses_random(lol("VISIBLE 1"))


# ---------------------------------------------------------------------------
# Real builds and launches.
# ---------------------------------------------------------------------------


@pytest.mark.requires_cc
class TestNativeExecution:
    def test_hello_single_pe(self):
        result = run_lolcode(
            lol('VISIBLE "O HAI"'), 1, engine="c", executor="process"
        )
        assert result.outputs == ["O HAI\n"]

    def test_serial_executor_single_pe(self):
        result = run_lolcode(
            lol("VISIBLE SUM OF 40 AN 2"), 1, engine="c", executor="serial"
        )
        assert result.outputs == ["42\n"]

    def test_per_pe_outputs_in_rank_order(self):
        src = lol("I HAS A me ITZ ME\nVISIBLE PRODUKT OF me AN 11")
        result = run_lolcode(src, 4, engine="c", executor="process")
        assert result.outputs == ["0\n", "11\n", "22\n", "33\n"]

    def test_remote_get_put_and_barrier(self):
        # Neighbour exchange through the shim's shared symmetric section.
        src = lol(
            "WE HAS A slot ITZ SRSLY A NUMBR\n"
            "slot R PRODUKT OF ME AN 100\n"
            "HUGZ\n"
            "I HAS A nekst ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "I HAS A got ITZ A NUMBR\n"
            "TXT MAH BFF nekst, got R UR slot\n"
            "HUGZ\n"
            "VISIBLE got"
        )
        result = run_lolcode(src, 4, engine="c", executor="process")
        assert result.outputs == ["100\n", "200\n", "300\n", "0\n"]

    def test_frenz_sized_symmetric_array(self):
        # MAH FRENZ extents fold per launch width — the registry-kernel
        # pattern that makes most workloads natively compilable.
        src = lol(
            "WE HAS A shard ITZ SRSLY LOTZ A NUMBRS AN THAR IZ MAH FRENZ\n"
            "shard'Z ME R SUM OF ME AN 1\n"
            "HUGZ\n"
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY\n"
            "    I HAS A tot ITZ A NUMBR\n"
            "    IM IN YR add UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
            "      I HAS A v ITZ A NUMBR\n"
            "      TXT MAH BFF k, v R UR shard'Z k\n"
            "      tot R SUM OF tot AN v\n"
            "    IM OUTTA YR add\n"
            "    VISIBLE tot\n"
            "OIC"
        )
        result = run_lolcode(src, 4, engine="c", executor="process")
        assert result.outputs[0] == "10\n"  # 1+2+3+4

    def test_cross_process_lock_mutual_exclusion(self):
        # 4 PEs x 25 locked increments on PE 0 must total exactly 100 —
        # the shim's CAS lock really excludes across OS processes.
        src = lol(
            "WE HAS A kounter ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "HUGZ\n"
            "IM IN YR bump UPPIN YR i TIL BOTH SAEM i AN 25\n"
            "  IM SRSLY MESIN WIF kounter\n"
            "  TXT MAH BFF 0, UR kounter R SUM OF UR kounter AN 1\n"
            "  DUN MESIN WIF kounter\n"
            "IM OUTTA YR bump\n"
            "HUGZ\n"
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY, VISIBLE kounter\n"
            "OIC"
        )
        result = run_lolcode(src, 4, engine="c", executor="process")
        assert result.outputs[0] == "100\n"

    def test_whole_array_transfer(self):
        src = lol(
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "a'Z 0 R SUM OF ME AN 1\n"
            "a'Z 3 R PRODUKT OF ME AN 7\n"
            "HUGZ\n"
            "I HAS A b ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
            "I HAS A nekst ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF nekst, MAH b R UR a\n"
            "VISIBLE b'Z 0 \" \" b'Z 3"
        )
        result = run_lolcode(src, 2, engine="c", executor="process")
        assert result.outputs == ["2 7\n", "1 0\n"]

    def test_matches_interpreter_on_examples(self, example_path):
        src = example_path("ring.lol").read_text()
        for n_pes in (1, 2, 4):
            native_run = run_lolcode(
                src, n_pes, engine="c", executor="process"
            )
            interp = run_lolcode(src, n_pes, engine="closure", seed=1)
            assert native_run.outputs == interp.outputs

    def test_stdin_lines_reach_each_pe(self):
        src = lol('I HAS A x\nGIMMEH x\nVISIBLE "got " x')
        result = run_lolcode(
            src,
            2,
            engine="c",
            executor="process",
            stdin_lines=[["wun"], ["too"]],
        )
        assert result.outputs == ["got wun\n", "got too\n"]

    def test_seed_reproducible_within_native(self):
        src = lol("I HAS A x ITZ WHATEVR\nVISIBLE x")
        a = run_lolcode(src, 2, engine="c", executor="process", seed=9)
        b = run_lolcode(src, 2, engine="c", executor="process", seed=9)
        assert a.outputs == b.outputs

    def test_build_cache_reuses_binary(self):
        src = lol("VISIBLE 123454321")
        first = native.build_native(src, n_pes=2)
        mtime = first.stat().st_mtime_ns
        second = native.build_native(src, n_pes=2)
        assert second == first
        assert second.stat().st_mtime_ns == mtime  # no rebuild
        # A different launch width may produce different C (and always
        # a different cache entry is allowed); same width must not.
        assert first.stat().st_mode & stat.S_IXUSR

    def test_runtime_failure_names_the_pe(self, tmp_path):
        # A PE whose barrier partner never arrives must be reported by
        # rank (the shim's own deadline fires, not a Python hang).
        src = lol(
            "BOTH SAEM ME AN 0\n"
            "O RLY?\n"
            "  YA RLY, HUGZ\n"
            "OIC"
        )
        with pytest.raises(LolParallelError, match="PE"):
            run_lolcode(
                src, 2, engine="c", executor="process", barrier_timeout=3
            )


@pytest.mark.requires_cc
class TestLolccDriver:
    def test_dump_c(self, tmp_path):
        from repro.cli import lolcc_main

        src_file = tmp_path / "p.lol"
        src_file.write_text(lol("VISIBLE 1"))
        out_file = tmp_path / "p.c"
        assert lolcc_main([str(src_file), "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "int main(void)" in text
        assert "LOL_SHMEM_SHIM" in text  # shim hook documented in output

    def test_build_standalone_binary_runs_serially(self, tmp_path):
        from repro.cli import lolcc_main

        src_file = tmp_path / "p.lol"
        src_file.write_text(lol('VISIBLE "STANDALONE WINZ"'))
        exe = tmp_path / "p"
        assert lolcc_main(["--build", str(src_file), "-o", str(exe)]) == 0
        assert os.access(exe, os.X_OK)
        # No environment at all: the shim's standalone single-PE mode.
        proc = subprocess.run(
            [str(exe)], capture_output=True, text=True, timeout=60
        )
        assert proc.returncode == 0
        assert proc.stdout == "STANDALONE WINZ\n"

    def test_lolrun_engine_c(self, tmp_path, capsys):
        from repro.cli import lolrun_main

        src_file = tmp_path / "p.lol"
        src_file.write_text(lol("VISIBLE SUM OF ME AN 1"))
        assert lolrun_main([str(src_file), "-np", "2", "--engine", "c"]) == 0
        assert capsys.readouterr().out == "1\n2\n"
