"""Tests for the NoC topology and machine cost models."""

import pytest

from repro import run_lolcode
from repro.lang.errors import LolRuntimeError
from repro.noc import (
    LinkTraffic,
    Mesh2D,
    cray_xc40,
    epiphany_iii,
    estimate,
    ideal_crossbar,
    link_traffic_from_trace,
    local_vs_remote_ratio,
    python_host,
    registry,
    square_mesh_for,
)

from .conftest import lol


class TestMesh:
    def test_coords_row_major(self):
        m = Mesh2D(4, 4)
        assert m.coords(0) == (0, 0)
        assert m.coords(5) == (1, 1)
        assert m.coords(15) == (3, 3)

    def test_hops_manhattan(self):
        m = Mesh2D(4, 4)
        assert m.hops(0, 0) == 0
        assert m.hops(0, 3) == 3
        assert m.hops(0, 15) == 6  # corner to corner = diameter

    def test_diameter(self):
        assert Mesh2D(4, 4).max_hops() == 6
        assert Mesh2D(1, 1).max_hops() == 0

    def test_xy_route_x_first(self):
        m = Mesh2D(4, 4)
        route = m.xy_route(0, 5)  # (0,0) -> (1,1)
        assert route == [0, 1, 5]  # east along row 0, then south

    def test_route_links_count_equals_hops(self):
        m = Mesh2D(4, 4)
        for src, dst in [(0, 15), (3, 12), (5, 10)]:
            assert len(m.route_links(src, dst)) == m.hops(src, dst)

    def test_average_hops_sane(self):
        m = Mesh2D(4, 4)
        avg = m.average_hops()
        assert 0 < avg < m.max_hops()

    def test_out_of_range(self):
        with pytest.raises(LolRuntimeError):
            Mesh2D(2, 2).coords(4)

    def test_square_mesh_for(self):
        assert (square_mesh_for(16).rows, square_mesh_for(16).cols) == (4, 4)
        assert square_mesh_for(1).n_nodes == 1
        assert square_mesh_for(5).n_nodes >= 5
        assert square_mesh_for(12).n_nodes >= 12

    def test_link_traffic(self):
        m = Mesh2D(2, 2)
        t = LinkTraffic(m)
        t.add_transfer(0, 3, 100)  # 2 hops
        assert t.total_link_bytes() == 200
        link, hot = t.hottest_link()
        assert hot == 100


class TestMachineModels:
    def test_registry(self):
        machines = registry()
        assert {"epiphany", "cray-xc40", "python-host"} <= set(machines)

    def test_epiphany_has_mesh(self):
        m = epiphany_iii()
        assert m.mesh is not None and m.mesh.n_nodes == 16

    def test_cray_is_flat(self):
        assert cray_xc40().mesh is None

    def test_put_cheaper_than_get_on_epiphany(self):
        m = epiphany_iii()
        assert m.put_time(0, 15, 8) < m.get_time(0, 15, 8)

    def test_latency_hierarchy(self):
        # Epiphany on-chip latency << Cray network latency.
        assert epiphany_iii().put_time(0, 1, 8) < cray_xc40().put_time(0, 1, 8)

    def test_barrier_grows_with_pes(self):
        m = cray_xc40()
        assert m.barrier_time(2) < m.barrier_time(1024)

    def test_figure1_asymmetry(self):
        # The PGAS model's core teaching point: remote >> local.
        assert local_vs_remote_ratio(epiphany_iii()) > 10
        assert local_vs_remote_ratio(cray_xc40()) > 100

    def test_ideal_crossbar_not_slower(self):
        base = epiphany_iii()
        ideal = ideal_crossbar(base)
        assert ideal.put_time(0, 15, 8) <= base.put_time(0, 15, 8)
        assert ideal.hop_latency == 0.0


class TestTraceReplay:
    def _trace(self, n_pes=4):
        body = (
            "WE HAS A a ITZ SRSLY A NUMBR\n"
            "WE HAS A b ITZ SRSLY A NUMBR\n"
            "a R ME\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, UR b R MAH a\nHUGZ\n"
            "I HAS A c ITZ SUM OF a AN b\nVISIBLE c"
        )
        return run_lolcode(lol(body), n_pes, seed=1, trace=True).trace

    def test_estimate_structure(self):
        trace = self._trace()
        est = estimate(trace, epiphany_iii())
        assert est.n_pes == 4
        assert len(est.per_pe) == 4
        assert est.makespan_s > 0

    def test_row_keys(self):
        est = estimate(self._trace(), cray_xc40())
        row = est.row()
        assert {"machine", "n_pes", "makespan_s", "comm_frac"} <= set(row)

    def test_more_pes_more_barrier_cost(self):
        e2 = estimate(self._trace(2), cray_xc40())
        e8 = estimate(self._trace(8), cray_xc40())
        assert e8.sync_s > e2.sync_s * 0.99  # barrier scales with log(n)

    def test_comm_dominates_on_network_for_tiny_compute(self):
        est = estimate(self._trace(), cray_xc40())
        assert est.comm_fraction() > 0.5

    def test_link_traffic_from_trace(self):
        trace = self._trace(4)
        mesh = Mesh2D(2, 2)
        traffic = link_traffic_from_trace(trace, mesh)
        assert traffic.total_link_bytes() > 0

    def test_python_host_model_order_of_magnitude(self):
        # The calibration model should put the barrier example well under
        # a second of modeled time — it runs in milliseconds in reality.
        est = estimate(self._trace(), python_host())
        assert est.makespan_s < 1.0
