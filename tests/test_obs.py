"""Unit tests for the observability plane (repro.obs).

Covers the metrics registry (counters/gauges/histograms, snapshot /
merge / diff, Prometheus rendering), the tracer (nesting, drain/absorb
renumbering, Chrome export), the exposition validator, the per-opcode
VM profiler, and the arming protocol itself.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    percentile,
    render_prometheus,
)
from repro.obs.promcheck import validate_exposition
from repro.obs.tracing import Tracer


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends disarmed with a clean global registry."""
    obs.disarm()
    obs.reset_registry()
    yield
    obs.disarm()
    obs.reset_registry()


class TestMetricsRegistry:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("lol_x_total", "x")
        c.inc(op="put")
        c.inc(3, op="get")
        assert c.value(op="put") == 1
        assert c.value(op="get") == 3
        assert c.total() == 4

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("lol_x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("lol_x_total")

    def test_histogram_summary_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lol_t_seconds", "t", buckets=(0.1, 1.0))
        for v in (0.05, 0.2, 0.3, 2.0):
            h.observe(v, pe="0")
        s = h.summary(pe="0")
        assert s["count"] == 4
        assert s["p50_s"] == round(percentile([0.05, 0.2, 0.3, 2.0], 50), 6)
        assert h.merged_summary()["count"] == 4

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("lol_n_total").inc(2, k="x")
            reg.histogram("lol_t_seconds", buckets=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        assert a.counter("lol_n_total").value(k="x") == 4
        assert a.histogram("lol_t_seconds").merged_summary()["count"] == 2

    def test_gauges_overwrite_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("lol_depth").set(3)
        b.gauge("lol_depth").set(7)
        a.merge(b.snapshot())
        assert a.gauge("lol_depth").value() == 7

    def test_snapshot_reset_drains(self):
        reg = MetricsRegistry()
        reg.counter("lol_n_total").inc(5)
        snap = reg.snapshot(reset=True)
        assert snap["lol_n_total"]["series"]
        assert reg.counter("lol_n_total").total() == 0

    def test_diff_snapshots_counter_delta_and_sample_tail(self):
        reg = MetricsRegistry()
        c = reg.counter("lol_n_total")
        h = reg.histogram("lol_t_seconds", buckets=(1.0,))
        c.inc(2)
        h.observe(0.1)
        before = reg.snapshot()
        c.inc(3)
        h.observe(0.2)
        delta = diff_snapshots(before, reg.snapshot())
        (counter_val,) = delta["lol_n_total"]["series"].values()
        assert counter_val == 3
        (hist_state,) = delta["lol_t_seconds"]["series"].values()
        assert hist_state["count"] == 1
        assert hist_state["samples"] == [0.2]

    def test_collectors_run_before_snapshot_and_swallow_errors(self):
        reg = MetricsRegistry()

        def good():
            reg.gauge("lol_g").set(1)

        def bad():
            raise RuntimeError("observer must not crash the observed")

        reg.register_collector(good)
        reg.register_collector(bad)
        snap = reg.snapshot()
        assert snap["lol_g"]["series"]

    def test_render_prometheus_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("lol_ops_total", "ops").inc(4, op="put")
        reg.gauge("lol_depth", "queue depth").set(2)
        reg.histogram("lol_wait_seconds", "waits", buckets=(0.1, 1.0)).observe(
            0.05, pe="1"
        )
        text = render_prometheus(reg)
        assert validate_exposition(text) == []
        assert 'lol_ops_total{op="put"} 4' in text
        assert 'lol_wait_seconds_bucket{pe="1",le="+Inf"} 1' in text


class TestPromcheck:
    def test_rejects_missing_inf_bucket(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_sum 0.5\nh_count 1\n'
        )
        assert any("+Inf" in e for e in validate_exposition(text))

    def test_rejects_non_monotonic_buckets(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 0.5\nh_count 3\n"
        )
        assert any("decrease" in e.lower() for e in validate_exposition(text))

    def test_rejects_count_bucket_mismatch(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_sum 0.5\nh_count 2\n'
        )
        assert validate_exposition(text)

    def test_rejects_duplicate_series(self):
        text = "# HELP c x\n# TYPE c counter\nc_total 1\nc_total 2\n"
        assert any("duplicate" in e.lower() for e in validate_exposition(text))

    def test_rejects_counter_without_total_suffix(self):
        text = "# HELP c x\n# TYPE c counter\nc 1\n"
        assert validate_exposition(text)


class TestTracer:
    def test_span_nesting_same_thread(self):
        tr = Tracer()
        with tr.span("launch", "root") as root:
            with tr.span("run", "pe0"):
                pass
        spans = {s["name"]: s for s in tr.spans()}
        assert spans["pe0"]["parent"] == root
        assert spans["root"]["parent"] is None

    def test_drain_resets_and_absorb_renumbers(self):
        worker = Tracer()
        with worker.span("run", "child-root"):
            worker.complete("comm", "get", 0.0, 0.1)
        payload = worker.drain()
        assert worker.spans() == []

        parent = Tracer()
        with parent.span("launch", "root"):
            pass
        parent.absorb(payload)
        spans = parent.spans()
        sids = [s["sid"] for s in spans]
        assert len(set(sids)) == len(sids)  # no collisions after merge
        absorbed = {s["name"]: s for s in spans}
        assert (
            absorbed["get"]["parent"] == absorbed["child-root"]["sid"]
        )  # parent links remapped, not dangling

    def test_drop_beyond_cap(self):
        tr = Tracer(max_spans=2)
        for i in range(4):
            tr.complete("comm", f"s{i}", 0.0, 0.0)
        assert len(tr.spans()) == 2
        assert tr.dropped == 2

    def test_chrome_export_shape(self):
        tr = Tracer()
        with tr.span("launch", "root", tid="main"):
            tr.complete("run", "pe0", 1.0, 0.5, tid="PE-0")
        doc = tr.export_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"root", "pe0"}
        for e in complete:
            assert isinstance(e["ts"], float) and "dur" in e
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        json.dumps(doc)  # must be serialisable as-is


class TestArming:
    def test_disarmed_by_default(self):
        assert obs.ACTIVE is None
        assert obs.drain() is None

    def test_arm_modes(self):
        rt = obs.arm("metrics")
        assert rt.metrics_on and not rt.trace_on
        rt = obs.arm("1")
        assert rt.metrics_on and rt.trace_on

    def test_arm_exports_env_for_spawned_children(self, monkeypatch):
        import os

        obs.arm("trace,metrics")
        assert os.environ[obs.ENV_VAR] == obs.ACTIVE.mode
        obs.disarm()
        assert obs.ENV_VAR not in os.environ

    def test_ensure_armed_does_not_rearm(self):
        first = obs.arm("trace")
        assert obs.ensure_armed("metrics") is first  # warm worker rule

    def test_drain_tags_gauges_with_pid(self):
        import os

        obs.arm("metrics")
        obs.get_registry().gauge("lol_g").set(5)
        payload = obs.drain()
        (raw_key,) = payload["metrics"]["lol_g"]["series"]
        assert ["pid", str(os.getpid())] in json.loads(raw_key)

    def test_absorb_merges_metrics_even_when_disarmed(self):
        worker = MetricsRegistry()
        worker.counter("lol_n_total").inc(2)
        obs.absorb({"pid": 1, "mode": "metrics", "metrics": worker.snapshot()})
        assert obs.get_registry().counter("lol_n_total").total() == 2


class TestVmProfiler:
    def test_opcode_counts_and_report(self):
        from repro.interp import compile_vm_cached
        from repro.obs.vmprof import ProfilingMachine, format_report
        from repro.shmem import run_spmd

        source = (
            "HAI 1.2\n"
            "I HAS A i ITZ 0\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "VISIBLE i\n"
            "IM OUTTA YR l\n"
            "KTHXBYE\n"
        )
        program = compile_vm_cached(source, "<test>", False, False)
        profiles = []

        def pe_main(ctx):
            machine = ProfilingMachine(ctx)
            try:
                machine.run(program)
            finally:
                profiles.append(machine.profile)

        result = run_spmd(pe_main, 1, seed=1)
        assert result.output.splitlines() == [str(i) for i in range(10)]
        (profile,) = profiles
        rows = profile.rows()
        assert rows, "profiler saw no opcodes"
        by_op = {r["op"]: r for r in rows}
        assert by_op["HALT"]["count"] == 1
        assert by_op["INC_JMP"]["count"] == 10  # one per loop iteration
        total = sum(r["count"] for r in rows)
        assert total == profile.summary()["ops_executed"]
        report = format_report(profile)
        assert "INC_JMP" in report and "total" in report

    def test_profiled_output_matches_unprofiled(self):
        from repro.interp import compile_vm_cached
        from repro.obs.vmprof import ProfilingMachine
        from repro.vm.machine import Machine
        from repro.shmem import run_spmd

        source = (
            "HAI 1.2\n"
            "I HAS A x ITZ 6\n"
            "VISIBLE PRODUKT OF x AN 7\n"
            "KTHXBYE\n"
        )
        program = compile_vm_cached(source, "<test>", False, False)
        outs = {}
        for label, cls in (("plain", Machine), ("prof", ProfilingMachine)):

            def pe_main(ctx, cls=cls):
                cls(ctx).run(program)

            outs[label] = run_spmd(pe_main, 1, seed=1).output
        assert outs["plain"] == outs["prof"] == "42\n"
