"""End-to-end observability tests: traced runs across executors, the
cross-process metrics merge, the server's Prometheus op, and the golden
Chrome trace for a 4-PE ring run.

The golden trace is *structurally* normalized — timestamps, durations,
span IDs and pids are stripped; names, categories, thread labels and
symbolic args are kept — so it is stable across machines while still
locking the span taxonomy.  Regenerate with ``UPDATE_GOLDEN=1``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import time

import pytest

from repro import obs, run_lolcode
from repro.lang.types import LolType
from repro.obs.promcheck import validate_exposition
from repro.service.pool import WorkerPool, shutdown_default_pool
from repro.shmem import SymmetricPlan
from repro.workloads import get_workload

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_ring_np4.json"

pytestmark = pytest.mark.service


@pytest.fixture(autouse=True)
def _obs_isolated():
    obs.disarm()
    obs.reset_registry()
    yield
    obs.disarm()
    obs.reset_registry()


def _ring_source() -> str:
    workload = get_workload("ring")
    params = workload.bind_params(None, smoke=True)
    return workload.source(params)


def _normalize(doc: dict) -> list:
    """Structural skeleton of a Chrome trace: machine-independent."""
    keep_args = ("engine", "pe", "n_pes", "symbol", "to", "nbytes", "filename")
    events = []
    for event in doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        tid = str(event["tid"])
        if not re.fullmatch(r"PE-\d+", tid):
            tid = "host"  # executor thread names carry run-local numbers
        args = {
            k: event["args"][k] for k in keep_args if k in event["args"]
        }
        events.append(
            {
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "tid": tid,
                "args": args,
            }
        )
    events.sort(
        key=lambda e: (
            e["cat"],
            e["name"],
            e["tid"],
            json.dumps(e["args"], sort_keys=True),
        )
    )
    return events


class TestGoldenTrace:
    def test_ring_np4_thread_trace_matches_golden(self):
        obs.arm("trace")
        run_lolcode(
            _ring_source(),
            4,
            executor="thread",
            engine="vm",
            seed=42,
            filename="<workload:ring>",
        )
        doc = obs.ACTIVE.tracer.export_chrome()
        got = _normalize(doc)
        if os.environ.get("UPDATE_GOLDEN"):
            GOLDEN.write_text(json.dumps(got, indent=1) + "\n")
        want = json.loads(GOLDEN.read_text())
        assert got == want

    def test_trace_is_loadable_chrome_json(self):
        obs.arm("trace")
        run_lolcode(_ring_source(), 4, executor="thread", seed=42)
        doc = json.loads(obs.ACTIVE.tracer.export_chrome_json())
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0


class TestPoolTracing:
    def test_pool_run_nests_all_pes_under_one_root(self):
        shutdown_default_pool()
        obs.arm("trace,metrics")
        try:
            run_lolcode(
                _ring_source(), 4, executor="pool", engine="vm", seed=42
            )
            tracer = obs.ACTIVE.tracer
            spans = tracer.spans()
            launches = [s for s in spans if s["cat"] == "launch"]
            assert len(launches) == 1
            root = launches[0]
            runs = {
                s["name"]: s for s in spans if s["cat"] == "run"
            }
            assert set(runs) == {"pe0", "pe1", "pe2", "pe3"}
            t0, t1 = root["ts"], root["ts"] + root["dur"]
            for span in runs.values():
                assert t0 <= span["ts"] and span["ts"] + span["dur"] <= t1
            # worker spans kept their origin pid: >= 2 processes present
            assert len({s["pid"] for s in spans}) >= 2
            doc = tracer.export_chrome()
            json.dumps(doc)
            # per-PE barrier histograms merged from the workers
            hist = obs.get_registry().get("lol_barrier_wait_seconds")
            pes = {dict(k)["pe"] for k in hist._series}
            assert pes == {"0", "1", "2", "3"}
        finally:
            shutdown_default_pool()


def _worker_pid(ctx):
    return os.getpid()


class TestPoolWorkerDeathMetrics:
    def test_respawn_and_liveness_counters(self):
        obs.arm("metrics")
        reg = obs.get_registry()
        replaced = reg.counter("lol_pool_workers_replaced_total")
        with WorkerPool(2) as pool:
            pids = pool.run(_worker_pid, 2, SymmetricPlan()).returns
            before = replaced.total()
            os.kill(pids[1], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while pool._workers[1].process.is_alive():
                assert time.monotonic() < deadline, "worker did not die"
                time.sleep(0.05)
            result = pool.run(_worker_pid, 2, SymmetricPlan())
            assert result.returns[1] != pids[1]
            assert replaced.total() == before + 1 == pool.workers_replaced
            assert pool.workers_alive() == 2


class TestProcessExecutorMerge:
    def test_worker_metrics_ride_the_reply_pipe(self):
        obs.arm("metrics")
        run_lolcode(_ring_source(), 2, executor="process", seed=42)
        reg = obs.get_registry()
        hist = reg.get("lol_barrier_wait_seconds")
        assert hist is not None
        merged = hist.merged_summary()
        assert merged and merged["count"] >= 2  # one barrier per PE minimum
        comm = reg.get("lol_comm_ops_total")
        assert comm is not None and comm.total() >= 2


class TestServerMetricsOp:
    def test_prometheus_exposition_covers_sched_and_latency(self):
        from repro.service.client import ServiceClient
        from repro.service.server import BackgroundServer

        with BackgroundServer(max_concurrency=2) as bg:
            client = ServiceClient(bg.socket_path)
            job = client.submit(
                workload="ring", smoke=True, n_pes=2,
                engine="vm", executor="thread",
            )
            client.result(job)
            text = client.metrics()
            assert validate_exposition(text) == []
            for series in (
                "lol_sched_queue_depth",
                "lol_sched_running",
                'lol_sched_jobs_submitted_total{engine="vm"} 1',
                "lol_job_latency_seconds_bucket",
            ):
                assert series in text, f"missing {series}"
            stats = client.stats()
            assert stats["latency"]["vm"]["count"] == 1
            assert "p99_s" in stats["latency"]["vm"]


class TestDisarmedIsStructurallyFree:
    def test_vm_machine_has_no_obs_references(self):
        """The VM dispatch loop must stay instrumentation-free: the
        profiler wraps the code object from the outside, and counters
        flush in ``VMProgram.run`` *after* the run."""
        import repro.vm.machine as machine_mod

        source = pathlib.Path(machine_mod.__file__).read_text()
        assert re.search(r"\b_?obs\b", source) is None
        assert "ACTIVE" not in source

    def test_disarmed_sites_take_none_branch(self):
        assert obs.ACTIVE is None
        result = run_lolcode(_ring_source(), 2, executor="thread", seed=42)
        assert obs.ACTIVE is None
        comm = obs.get_registry().get("lol_comm_ops_total")
        assert comm is None or comm.total() == 0  # nothing recorded
        assert result.output
