"""End-to-end tests for the paper's Section VI example programs, run from
the bundled .lol files exactly as a student would run them."""

import pytest

from repro import run_file, run_lolcode


class TestRingExample:
    """Section VI.A: initialization and symmetric memory allocation."""

    def test_runs_on_4_pes(self, example_path):
        r = run_file(str(example_path("ring.lol")), n_pes=4, seed=1)
        # PE i receives slot 0 of PE (i+1): value (i+1)*1000.
        assert "HAI ITZ 0 I GOT 1000 FRUM MAH BFF 1" in r.outputs[0]
        assert "HAI ITZ 3 I GOT 0 FRUM MAH BFF 0" in r.outputs[3]

    def test_single_pe_degenerates(self, example_path):
        r = run_file(str(example_path("ring.lol")), n_pes=1, seed=1)
        assert "I GOT 0 FRUM MAH BFF 0" in r.output

    def test_race_free(self, example_path):
        r = run_file(
            str(example_path("ring.lol")), n_pes=4, seed=1, race_detection=True
        )
        assert r.races == []


class TestLocksExample:
    """Section VI.B: parallel synchronization with locks."""

    def test_counter_is_exact(self, example_path):
        r = run_file(str(example_path("locks.lol")), n_pes=4, seed=1)
        assert "TEH COUNTR SEZ 400 (SHUD B 400)" in r.outputs[0]

    def test_race_free_under_lock(self, example_path):
        r = run_file(
            str(example_path("locks.lol")), n_pes=3, seed=1, race_detection=True
        )
        assert r.races == []
        assert "TEH COUNTR SEZ 300" in r.outputs[0]


class TestBarrierExample:
    """Section VI.C / Figure 2: barriers and message passing."""

    def test_deterministic_sums(self, example_path):
        r = run_file(str(example_path("barrier.lol")), n_pes=4, seed=1)
        # PE i: a = i+1, b = ((i-1) mod 4)+1, c = a+b.
        assert "PE 0: a=1 b=4 c=5" in r.outputs[0]
        assert "PE 3: a=4 b=3 c=7" in r.outputs[3]

    def test_every_seed_same_answer(self, example_path):
        outs = {
            run_file(str(example_path("barrier.lol")), n_pes=4, seed=s).output
            for s in range(4)
        }
        assert len(outs) == 1


class TestNbodyExample:
    """Section VI.D: the canonical parallel 2-D n-body application."""

    @pytest.mark.slow
    def test_paper_listing_runs(self, example_path):
        r = run_file(str(example_path("nbody2d.lol")), n_pes=2, seed=42)
        for pe in range(2):
            lines = r.outputs[pe].splitlines()
            assert lines[0] == f"HAI ITZ {pe} I HAS PARTICLZ 2 MUV"
            assert lines[1] == f"O HAI ITZ {pe}, MAH PARTICLZ IZ:"
            assert len(lines) == 2 + 32
            for line in lines[2:]:
                x, y = line.split()
                float(x), float(y)

    def test_paper_listing_has_init_race(self, example_path):
        """Reproduction finding: the paper's own listing omits a barrier
        between particle initialization and the first force phase, so
        remote reads of pos_x/pos_y race with initialization writes."""
        r = run_file(
            str(example_path("nbody2d.lol")), n_pes=4, seed=42,
            race_detection=True,
        )
        assert {"pos_x", "pos_y"} <= {rep.symbol for rep in r.races}

    def test_fixed_listing_is_race_free_and_deterministic(self, example_path):
        path = str(example_path("nbody2d_fixed.lol"))
        r1 = run_file(path, n_pes=2, seed=42, race_detection=True)
        assert r1.races == []
        r2 = run_file(path, n_pes=2, seed=42)
        assert r1.outputs == r2.outputs

    @pytest.mark.slow
    def test_physics_sanity_momentum(self, example_path):
        """All-pairs forces with equal 'masses' should roughly conserve
        momentum: velocities are symmetric kicks (F_ij = -F_ji) within a
        PE's local block... but cross-PE kicks are not symmetric in the
        paper's algorithm, so we only check positions stay finite and
        bounded — the teaching-scale sanity check."""
        r = run_file(str(example_path("nbody2d_fixed.lol")), n_pes=2, seed=7)
        for out in r.outputs:
            for line in out.splitlines()[2:]:
                x, y = map(float, line.split())
                assert abs(x) < 1e6 and abs(y) < 1e6


class TestSectionVFragments:
    """The inline code fragments of Section V, as written in the paper."""

    def test_lock_fragment(self):
        # 'IM SRSLY MESIN WIF x, O RLY? / NO WAI, IM MESIN WIF x / OIC /
        #  x R new_value / DUN MESIN WIF x' — runs under Table II
        # semantics (see DESIGN.md on the paper's SRSLY swap).
        src = (
            "HAI 1.2\n"
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "I HAS A new_value ITZ 9\n"
            "IM MESIN WIF x, O RLY?\n"
            "NO WAI,\n"
            "  IM SRSLY MESIN WIF x\n"
            "OIC\n"
            "x R new_value\n"
            "DUN MESIN WIF x\n"
            "VISIBLE x\n"
            "KTHXBYE\n"
        )
        r = run_lolcode(src, 2, seed=1)
        assert all(out == "9\n" for out in r.outputs)

    def test_remote_sum_fragment(self):
        # TXT MAH BFF k, MAH x R SUM OF UR y AN UR z
        src = (
            "HAI 1.2\n"
            "WE HAS A y ITZ SRSLY A NUMBR\n"
            "WE HAS A z ITZ SRSLY A NUMBR\n"
            "I HAS A x ITZ A NUMBR\n"
            "y R 20\nz R 22\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF k, MAH x R SUM OF UR y AN UR z\n"
            "VISIBLE x\n"
            "KTHXBYE\n"
        )
        r = run_lolcode(src, 3, seed=1)
        assert all(out == "42\n" for out in r.outputs)

    def test_initialization_fragment(self):
        # Section VI.A fragment verbatim (with the continuation lines).
        src = (
            "HAI 1.2\n"
            "I HAS A pe ITZ A NUMBR AN ITZ ME\n"
            "I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n"
            "WE HAS A array ITZ SRSLY LOTZ A NUMBRS ...\n"
            "  AN THAR IZ 32\n"
            "I HAS A next_pe ITZ A NUMBR ...\n"
            "  AN ITZ SUM OF pe AN 1\n"
            "next_pe R MOD OF next_pe AN n_pes\n"
            "HUGZ\n"
            "TXT MAH BFF next_pe, MAH array R UR array\n"
            "VISIBLE next_pe\n"
            "KTHXBYE\n"
        )
        r = run_lolcode(src, 4, seed=1)
        assert r.outputs == ["1\n", "2\n", "3\n", "0\n"]
