"""Parser unit tests: grammar coverage for Table I, II, III constructs."""

import pytest

from repro.lang import ast, parse
from repro.lang.errors import LolSyntaxError


def parse_body(body: str) -> list:
    return parse(f"HAI 1.2\n{body}\nKTHXBYE\n").body


def parse_stmt(body: str):
    stmts = parse_body(body)
    assert len(stmts) == 1, stmts
    return stmts[0]


def parse_expr(expr_src: str):
    stmt = parse_stmt(expr_src)
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestProgram:
    def test_version(self):
        prog = parse("HAI 1.2\nKTHXBYE\n")
        assert prog.version == "1.2"

    def test_no_version(self):
        prog = parse("HAI\nKTHXBYE\n")
        assert prog.version is None

    def test_missing_hai(self):
        with pytest.raises(LolSyntaxError):
            parse("VISIBLE 1\nKTHXBYE\n")

    def test_missing_kthxbye(self):
        with pytest.raises(LolSyntaxError):
            parse("HAI 1.2\nVISIBLE 1\n")

    def test_trailing_garbage(self):
        with pytest.raises(LolSyntaxError):
            parse("HAI 1.2\nKTHXBYE\nVISIBLE 1\n")

    def test_leading_comments_ok(self):
        prog = parse("BTW header\nOBTW\nstuff\nTLDR\nHAI 1.2\nKTHXBYE\n")
        assert prog.body == []


class TestDeclarations:
    def test_plain(self):
        d = parse_stmt("I HAS A x")
        assert isinstance(d, ast.VarDecl)
        assert d.scope == "I"
        assert d.name == "x"
        assert d.static_type is None

    def test_init(self):
        d = parse_stmt("I HAS A x ITZ 5")
        assert isinstance(d.init, ast.IntLit)

    def test_typed(self):
        d = parse_stmt("I HAS A x ITZ A NUMBR")
        assert d.static_type == "NUMBR"
        assert not d.srsly

    def test_static_typed(self):
        d = parse_stmt("I HAS A x ITZ SRSLY A NUMBAR")
        assert d.static_type == "NUMBAR"
        assert d.srsly

    def test_typed_with_init_clause(self):
        # Paper VI.A: I HAS A pe ITZ A NUMBR AN ITZ ME
        d = parse_stmt("I HAS A pe ITZ A NUMBR AN ITZ ME")
        assert d.static_type == "NUMBR"
        assert isinstance(d.init, ast.MeExpr)

    def test_local_array(self):
        d = parse_stmt("I HAS A v ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32")
        assert d.is_array and d.srsly
        assert d.static_type == "NUMBAR"
        assert isinstance(d.size, ast.IntLit) and d.size.value == 32

    def test_symmetric_scalar(self):
        d = parse_stmt("WE HAS A x ITZ SRSLY A NUMBR")
        assert d.scope == "WE"

    def test_symmetric_shared_array(self):
        d = parse_stmt(
            "WE HAS A p ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT"
        )
        assert d.scope == "WE" and d.is_array and d.shared_lock

    def test_sharin_without_we_rejected(self):
        with pytest.raises(LolSyntaxError):
            parse_body("I HAS A x ITZ A NUMBR AN IM SHARIN IT")

    def test_array_without_size_rejected(self):
        with pytest.raises(LolSyntaxError):
            parse_body("I HAS A x ITZ LOTZ A NUMBRS")

    def test_continuation_in_declaration(self):
        d = parse_stmt("WE HAS A a ITZ SRSLY LOTZ A NUMBRS ...\n  AN THAR IZ 32")
        assert d.is_array and d.size.value == 32


class TestExpressions:
    def test_binary_prefix(self):
        e = parse_expr("SUM OF 1 AN 2")
        assert isinstance(e, ast.BinOp) and e.op == "add"

    def test_an_optional(self):
        e = parse_expr("SUM OF 1 2")
        assert isinstance(e, ast.BinOp)

    def test_nested_binary(self):
        e = parse_expr("QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000")
        assert e.op == "div"
        assert isinstance(e.lhs, ast.BinOp) and e.lhs.op == "add"
        assert isinstance(e.rhs, ast.IntLit)

    def test_paper_comparisons(self):
        assert parse_expr("BIGGER 3 AN 2").op == "gt"
        assert parse_expr("SMALLR 3 AN 2").op == "lt"

    def test_max_min(self):
        assert parse_expr("BIGGR OF 3 AN 2").op == "max"
        assert parse_expr("SMALLR OF 3 AN 2").op == "min"

    def test_boolean_ops(self):
        assert parse_expr("BOTH OF WIN AN FAIL").op == "and"
        assert parse_expr("EITHER OF WIN AN FAIL").op == "or"
        assert parse_expr("WON OF WIN AN FAIL").op == "xor"

    def test_not(self):
        e = parse_expr("NOT WIN")
        assert isinstance(e, ast.UnaryOp) and e.op == "not"

    def test_all_of_mkay(self):
        e = parse_expr("ALL OF WIN AN WIN AN FAIL MKAY")
        assert isinstance(e, ast.NaryOp) and e.op == "all"
        assert len(e.operands) == 3

    def test_smoosh(self):
        e = parse_expr('SMOOSH "a" AN "b" MKAY')
        assert e.op == "smoosh"

    def test_maek(self):
        e = parse_expr("MAEK 3.7 A NUMBR")
        assert isinstance(e, ast.Cast) and e.to_type == "NUMBR"

    def test_maek_without_a(self):
        e = parse_expr("MAEK 3.7 NUMBR")
        assert isinstance(e, ast.Cast)

    def test_srs(self):
        e = parse_expr('SRS "x"')
        assert isinstance(e, ast.SrsRef)

    def test_table3_unaries(self):
        assert parse_expr("SQUAR OF 3").op == "square"
        assert parse_expr("UNSQUAR OF 3").op == "sqrt"
        assert parse_expr("FLIP OF 3").op == "recip"

    def test_randoms(self):
        assert parse_expr("WHATEVR").kind == "int"
        assert parse_expr("WHATEVAR").kind == "float"

    def test_me_and_frenz(self):
        assert isinstance(parse_expr("ME"), ast.MeExpr)
        assert isinstance(parse_expr("MAH FRENZ"), ast.FrenzExpr)

    def test_index(self):
        e = parse_expr("arr'Z 3")
        assert isinstance(e, ast.Index)
        assert e.base.name == "arr"

    def test_index_with_expr(self):
        e = parse_expr("arr'Z SUM OF i AN 1")
        assert isinstance(e.index, ast.BinOp)

    def test_ur_qualified(self):
        e = parse_expr("UR x")
        assert isinstance(e, ast.VarRef) and e.qualifier == "UR"

    def test_ur_indexed(self):
        e = parse_expr("UR pos_x'Z j")
        assert isinstance(e, ast.Index)
        assert e.base.qualifier == "UR"

    def test_funcall(self):
        e = parse_expr("I IZ addtwo YR 1 AN YR 2 MKAY")
        assert isinstance(e, ast.FuncCall)
        assert e.name == "addtwo" and len(e.args) == 2

    def test_funcall_no_args(self):
        e = parse_expr("I IZ gimme MKAY")
        assert e.args == []


class TestStatements:
    def test_assignment(self):
        s = parse_stmt("x R 5")
        assert isinstance(s, ast.Assign)

    def test_indexed_assignment(self):
        s = parse_stmt("arr'Z i R 5")
        assert isinstance(s.target, ast.Index)

    def test_ur_assignment(self):
        s = parse_stmt("UR b R MAH a")
        assert s.target.qualifier == "UR"
        assert s.value.qualifier == "MAH"

    def test_assign_to_literal_rejected(self):
        with pytest.raises(LolSyntaxError):
            parse_body("5 R 6")

    def test_is_now_a(self):
        s = parse_stmt("x IS NOW A YARN")
        assert isinstance(s, ast.CastStmt) and s.to_type == "YARN"

    def test_visible_multiple_args(self):
        s = parse_stmt('VISIBLE "HAI ITZ " ME " OK"')
        assert isinstance(s, ast.Visible) and len(s.args) == 3

    def test_visible_bang(self):
        s = parse_stmt('VISIBLE "no newline"!')
        assert s.newline is False

    def test_gimmeh(self):
        s = parse_stmt("GIMMEH x")
        assert isinstance(s, ast.Gimmeh)

    def test_can_has(self):
        s = parse_stmt("CAN HAS STDIO?")
        assert isinstance(s, ast.CanHas) and s.library == "STDIO"

    def test_expr_stmt(self):
        s = parse_stmt("SUM OF 1 AN 2")
        assert isinstance(s, ast.ExprStmt)


class TestControlFlow:
    def test_if_structure(self):
        stmts = parse_body(
            "BOTH SAEM x AN 1, O RLY?\n"
            "YA RLY,\n  VISIBLE 1\n"
            "MEBBE BOTH SAEM x AN 2\n  VISIBLE 2\n"
            "NO WAI\n  VISIBLE 3\nOIC"
        )
        assert isinstance(stmts[0], ast.ExprStmt)
        iff = stmts[1]
        assert isinstance(iff, ast.If)
        assert len(iff.ya_rly) == 1
        assert len(iff.mebbe) == 1
        assert len(iff.no_wai) == 1

    def test_if_empty_branches(self):
        stmts = parse_body("WIN, O RLY?\nOIC")
        iff = stmts[1]
        assert iff.ya_rly == [] and iff.no_wai == []

    def test_switch(self):
        s = parse_stmt(
            "WTF?\nOMG 1\n  VISIBLE 1\n  GTFO\nOMG 2\n  VISIBLE 2\n"
            "OMGWTF\n  VISIBLE 3\nOIC"
        )
        assert isinstance(s, ast.Switch)
        assert len(s.cases) == 2
        assert len(s.default) == 1

    def test_switch_non_literal_case_rejected(self):
        with pytest.raises(LolSyntaxError):
            parse_body("WTF?\nOMG x\n  VISIBLE 1\nOIC")

    def test_loop_uppin_til(self):
        s = parse_stmt(
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "  VISIBLE i\nIM OUTTA YR loop"
        )
        assert isinstance(s, ast.Loop)
        assert s.op == "UPPIN" and s.var == "i" and s.cond_kind == "TIL"

    def test_loop_nerfin_wile(self):
        s = parse_stmt(
            "IM IN YR l NERFIN YR i WILE BIGGER i AN 0\nIM OUTTA YR l"
        )
        assert s.op == "NERFIN" and s.cond_kind == "WILE"

    def test_infinite_loop(self):
        s = parse_stmt("IM IN YR forever\n  GTFO\nIM OUTTA YR forever")
        assert s.op is None and s.cond is None

    def test_loop_label_mismatch(self):
        with pytest.raises(LolSyntaxError):
            parse_body("IM IN YR a\nIM OUTTA YR b")

    def test_nested_loops_same_label(self):
        # The paper's n-body labels every loop "loop".
        s = parse_stmt(
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\n"
            "  IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 2\n"
            "    VISIBLE i\n"
            "  IM OUTTA YR loop\n"
            "IM OUTTA YR loop"
        )
        assert isinstance(s.body[0], ast.Loop)

    def test_funcdef(self):
        s = parse_stmt(
            "HOW IZ I add YR a AN YR b\n  FOUND YR SUM OF a AN b\nIF U SAY SO"
        )
        assert isinstance(s, ast.FuncDef)
        assert s.params == ["a", "b"]
        assert isinstance(s.body[0], ast.Return)


class TestParallelStatements:
    def test_hugz(self):
        assert isinstance(parse_stmt("HUGZ"), ast.Hugz)

    def test_lock_kinds(self):
        assert parse_stmt("IM SRSLY MESIN WIF x").kind == "lock"
        assert parse_stmt("IM MESIN WIF x").kind == "trylock"
        assert parse_stmt("DUN MESIN WIF x").kind == "unlock"

    def test_lock_with_ur(self):
        s = parse_stmt("IM MESIN WIF UR x")
        assert s.target.qualifier == "UR"

    def test_lock_on_element_rejected(self):
        with pytest.raises(LolSyntaxError):
            parse_body("IM SRSLY MESIN WIF x'Z 1")

    def test_txt_single_statement(self):
        s = parse_stmt("TXT MAH BFF k, MAH x R UR x")
        assert isinstance(s, ast.TxtStmt) and not s.block
        assert len(s.body) == 1
        assert isinstance(s.body[0], ast.Assign)

    def test_txt_block(self):
        s = parse_stmt(
            "TXT MAH BFF k AN STUFF\n  UR x R 1\n  UR y R 2\nTTYL"
        )
        assert s.block and len(s.body) == 2

    def test_txt_block_trailing_comma(self):
        # The n-body listing writes 'TXT MAH BFF k AN STUFF,'
        s = parse_stmt("TXT MAH BFF k AN STUFF,\n  UR x R 1\nTTYL")
        assert s.block

    def test_txt_complex_expression_target(self):
        s = parse_stmt("TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, MAH x R UR x")
        assert isinstance(s.pe, ast.BinOp)

    def test_paper_sum_of_remotes(self):
        # TXT MAH BFF k, MAH x R SUM OF UR y AN UR z
        s = parse_stmt("TXT MAH BFF k, MAH x R SUM OF UR y AN UR z")
        assign = s.body[0]
        assert assign.value.lhs.qualifier == "UR"
        assert assign.value.rhs.qualifier == "UR"


class TestErrorPositions:
    def test_error_carries_position(self):
        try:
            parse("HAI 1.2\nI HAS A\nKTHXBYE\n")
        except LolSyntaxError as exc:
            assert exc.pos.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LolSyntaxError")
