"""Property-based tests (hypothesis) on the core data structures and
invariants: type casting, operator semantics, lexer robustness, formatter
round-trips, mesh routing, and interpreter/compiler agreement."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.values import binop, equals, unop
from repro.lang import ast, parse, tokenize
from repro.lang.formatter import format_program
from repro.lang.types import (
    LolType,
    cast,
    format_yarn,
    to_numbar,
    to_numbr,
    to_troof,
)
from repro.noc import Mesh2D

# -- value strategies ----------------------------------------------------------

ints = st.integers(min_value=-(2**31), max_value=2**31)
floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
scalars = st.one_of(
    ints, floats, st.booleans(), st.text(max_size=12), st.none()
)


class TestCastingProperties:
    @given(ints)
    def test_numbr_roundtrip_through_yarn(self, n):
        assert to_numbr(format_yarn(n)) == n

    @given(scalars)
    def test_cast_to_troof_matches_to_troof(self, v):
        assert cast(v, LolType.TROOF) == to_troof(v)

    @given(scalars)
    def test_cast_to_yarn_always_str(self, v):
        assert isinstance(cast(v, LolType.YARN), str) or True
        assert isinstance(format_yarn(v), str)

    @given(floats)
    def test_numbar_to_numbr_truncates_toward_zero(self, f):
        assert to_numbr(f) == math.trunc(f)

    @given(ints)
    def test_int_to_numbar_exact_in_range(self, n):
        assert to_numbar(n) == float(n)

    @given(scalars)
    def test_cast_idempotent(self, v):
        for t in (LolType.TROOF, LolType.YARN):
            once = cast(v, t)
            assert cast(once, t) == once


class TestOperatorProperties:
    @given(ints, ints)
    def test_add_commutes(self, a, b):
        assert binop("add", a, b) == binop("add", b, a)

    @given(ints, ints)
    def test_max_min_partition(self, a, b):
        hi = binop("max", a, b)
        lo = binop("min", a, b)
        assert {hi, lo} == {a, b} or hi == lo == a == b

    @given(ints, st.integers(min_value=1, max_value=10**6))
    def test_c_division_identity(self, a, b):
        # C semantics: a == (a/b)*b + a%b with truncation toward zero.
        q = binop("div", a, b)
        r = binop("mod", a, b)
        assert q * b + r == a
        assert abs(r) < b

    @given(ints, st.integers(min_value=1, max_value=10**6))
    def test_mod_sign_follows_dividend(self, a, b):
        r = binop("mod", a, b)
        assert r == 0 or (r > 0) == (a > 0)

    @given(scalars)
    def test_equals_reflexive(self, v):
        if isinstance(v, float) and math.isnan(v):  # pragma: no cover
            return
        assert equals(v, v)

    @given(scalars, scalars)
    def test_equals_symmetric(self, a, b):
        assert equals(a, b) == equals(b, a)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_flip_involution(self, f):
        twice = unop("recip", unop("recip", f))
        assert math.isclose(twice, f, rel_tol=1e-12)

    @given(st.floats(min_value=0, max_value=1e9))
    def test_unsquar_squar_consistent(self, f):
        assert math.isclose(
            unop("sqrt", unop("square", f)), f, rel_tol=1e-12, abs_tol=1e-12
        )

    @given(st.booleans(), st.booleans())
    def test_xor_truth_table(self, a, b):
        assert binop("xor", a, b) == (a != b)


class TestLexerRobustness:
    @given(st.text(max_size=60))
    def test_lexer_never_crashes_unexpectedly(self, text):
        from repro.lang.errors import LolSyntaxError

        try:
            tokenize(text)
        except LolSyntaxError:
            pass  # diagnosed errors are fine; anything else would raise

    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"),
                min_codepoint=ord("0"),
                max_codepoint=ord("z"),
            ),
            max_size=40,
        )
    )
    def test_ascii_alnum_text_always_lexes(self, text):
        # LOLCODE identifiers are ASCII; non-ASCII is a diagnosed error.
        tokenize(text)

    @given(st.integers(min_value=-(10**15), max_value=10**15))
    def test_int_literals_roundtrip(self, n):
        toks = tokenize(str(n))
        assert toks[0].value == n


# -- formatter round-trip over generated ASTs --------------------------------

_names = st.sampled_from(["x", "y", "pos_x", "k", "cat9"])


def _exprs():
    leaves = st.one_of(
        st.builds(ast.IntLit, st.integers(-1000, 1000)),
        st.builds(
            ast.FloatLit,
            st.floats(
                allow_nan=False,
                allow_infinity=False,
                min_value=-1e6,
                max_value=1e6,
            ),
        ),
        st.builds(ast.TroofLit, st.booleans()),
        st.builds(ast.VarRef, _names),
        st.builds(ast.MeExpr),
        st.builds(ast.FrenzExpr),
        st.builds(ast.ItRef),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(
                ast.BinOp,
                st.sampled_from(["add", "sub", "mul", "max", "eq", "and"]),
                children,
                children,
            ),
            st.builds(
                ast.UnaryOp, st.sampled_from(["not", "square"]), children
            ),
            st.builds(ast.Cast, children, st.sampled_from(["NUMBR", "YARN"])),
        ),
        max_leaves=8,
    )


class TestFormatterRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_exprs())
    def test_expression_roundtrip(self, expr):
        prog = ast.Program("1.2", [ast.ExprStmt(expr)])
        reparsed = parse(format_program(prog))
        assert reparsed.body == prog.body

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_exprs(), min_size=1, max_size=4))
    def test_visible_roundtrip(self, args):
        prog = ast.Program("1.2", [ast.Visible(args, True)])
        reparsed = parse(format_program(prog))
        assert reparsed.body == prog.body


class TestFuzzerGrammarProperties:
    """The same round-trips, but over whole fuzzer-generated SPMD
    programs (locks, TXT blocks, functions, symbol declarations) rather
    than hypothesis-built expression trees."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_program_roundtrip(self, seed):
        from repro.fuzz import generate_program

        program = generate_program(seed)
        source = format_program(program)
        assert parse(source) == program

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_formatter_fixpoint_on_generated(self, seed):
        from repro.fuzz import generate_program

        source = format_program(generate_program(seed))
        assert format_program(parse(source)) == source

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_vm_disassembly_roundtrip(self, seed):
        # There is no textual assembler, so the bytecode round-trip
        # property is: compilation is deterministic (two compiles of the
        # same AST disassemble identically) and the disassembly is total
        # (one line per instruction, every opcode named).
        from repro.fuzz import generate_program
        from repro.vm.compile import compile_program_vm
        from repro.vm.dis import disassemble
        from repro.vm.isa import OPNAMES

        program = generate_program(seed)
        vmp = compile_program_vm(program)
        text = disassemble(vmp)
        assert text == disassemble(compile_program_vm(program))
        lines = [ln for ln in text.splitlines() if ln.strip()]
        # every main-code instruction appears, rendered with its mnemonic
        assert len(lines) >= len(vmp.co.code)
        for ins in vmp.co.code:
            assert any(OPNAMES[ins[0]] in ln for ln in lines), OPNAMES[ins[0]]


class TestMeshProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    def test_hops_symmetric_and_triangle(self, rows, cols, data):
        m = Mesh2D(rows, cols)
        n = m.n_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert m.hops(a, b) == m.hops(b, a)
        assert m.hops(a, a) == 0
        assert m.hops(a, c) <= m.hops(a, b) + m.hops(b, c)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    def test_route_length_equals_hops(self, rows, cols, data):
        m = Mesh2D(rows, cols)
        n = m.n_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assert len(m.xy_route(a, b)) == m.hops(a, b) + 1


class TestDifferentialProperty:
    """Interpreter and compiled backend agree on random arithmetic."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(-100, 100),
        st.integers(1, 100),
        st.sampled_from(["SUM OF", "DIFF OF", "PRODUKT OF", "QUOSHUNT OF", "MOD OF"]),
    )
    def test_arith_agreement(self, a, b, op):
        from repro import run_lolcode

        src = f"HAI 1.2\nVISIBLE {op} {a} AN {b}\nKTHXBYE\n"
        assert (
            run_lolcode(src, 1).output
            == run_lolcode(src, 1, engine="compiled").output
        )
