"""Tests for the barrier-epoch race detector (Figure 2's teaching point)."""

import pytest

from repro import run_lolcode
from repro.lang.types import LolType
from repro.shmem import RaceDetector, ShmemContext, run_spmd

from .conftest import lol


class TestDetectorUnit:
    def test_write_write_same_epoch_races(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 2, "write", epoch=5)
        assert len(det.reports) == 1
        assert det.reports[0].symbol == "b"

    def test_read_read_no_race(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "read", epoch=5)
        det.on_access("b", 0, 2, "read", epoch=5)
        assert det.reports == []

    def test_write_read_races(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 0, "read", epoch=5)
        assert len(det.reports) == 1

    def test_different_epochs_no_race(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 0, "read", epoch=6)
        assert det.reports == []

    def test_same_pe_no_race(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 1, "read", epoch=5)
        assert det.reports == []

    def test_both_locked_no_race(self):
        det = RaceDetector()
        det.on_access("x", 0, 1, "write", epoch=5, locked=True)
        det.on_access("x", 0, 2, "write", epoch=5, locked=True)
        assert det.reports == []

    def test_one_locked_still_races(self):
        det = RaceDetector()
        det.on_access("x", 0, 1, "write", epoch=5, locked=True)
        det.on_access("x", 0, 2, "write", epoch=5, locked=False)
        assert len(det.reports) == 1

    def test_duplicate_reports_suppressed(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 2, "write", epoch=5)
        det.on_access("b", 0, 2, "write", epoch=5)
        assert len(det.reports) == 1

    def test_element_granularity(self):
        det = RaceDetector(element_granularity=True)
        det.on_access("a", 0, 1, "write", epoch=1, element=0)
        det.on_access("a", 0, 2, "write", epoch=1, element=1)
        assert det.reports == []  # disjoint elements
        det.on_access("a", 0, 3, "write", epoch=1, element=0)
        assert len(det.reports) == 1

    def test_describe_mentions_hugz(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 0, "read", epoch=5)
        assert "HUGZ" in det.reports[0].describe()

    def test_clear(self):
        det = RaceDetector()
        det.on_access("b", 0, 1, "write", epoch=5)
        det.on_access("b", 0, 2, "write", epoch=5)
        det.clear()
        assert det.reports == []


class TestFigure2Program:
    """The exact Figure 2 scenario: remote put of b, local read of b."""

    RACY = (
        "WE HAS A a ITZ SRSLY A NUMBR\n"
        "WE HAS A b ITZ SRSLY A NUMBR\n"
        "a R SUM OF ME AN 1\nHUGZ\n"
        "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
        "TXT MAH BFF k, UR b R MAH a\n"
        "{barrier}"
        "I HAS A c ITZ SUM OF a AN b\n"
        "VISIBLE c"
    )

    def test_without_hugz_detector_fires(self):
        r = run_lolcode(
            lol(self.RACY.format(barrier="")), 4, race_detection=True, seed=1
        )
        assert any(rep.symbol == "b" for rep in r.races)

    def test_with_hugz_no_race(self):
        r = run_lolcode(
            lol(self.RACY.format(barrier="HUGZ\n")),
            4,
            race_detection=True,
            seed=1,
        )
        assert r.races == []

    def test_with_hugz_deterministic_result(self):
        src = lol(self.RACY.format(barrier="HUGZ\n"))
        outs = {run_lolcode(src, 4, seed=s).output for s in range(3)}
        assert len(outs) == 1

    def test_locked_increment_no_race(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "HUGZ\n"
            "IM SRSLY MESIN WIF x\n"
            "TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
            "DUN MESIN WIF x\n"
        )
        r = run_lolcode(lol(body), 4, race_detection=True, seed=1)
        assert r.races == []

    def test_unlocked_increment_races(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "HUGZ\n"
            "TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
        )
        r = run_lolcode(lol(body), 4, race_detection=True, seed=1)
        assert any(rep.symbol == "x" for rep in r.races)


class TestPythonApiRaces:
    def test_put_vs_local_read(self):
        def main(ctx: ShmemContext):
            ctx.alloc_scalar("b", LolType.NUMBR)
            ctx.barrier_all()
            nxt = (ctx.my_pe + 1) % ctx.n_pes
            ctx.put("b", 1, nxt)
            ctx.local_read("b")  # racy: no barrier between put and read

        r = run_spmd(main, 2, race_detection=True)
        assert len(r.races) >= 1

    def test_barrier_separated_clean(self):
        def main(ctx: ShmemContext):
            ctx.alloc_scalar("b", LolType.NUMBR)
            ctx.barrier_all()
            nxt = (ctx.my_pe + 1) % ctx.n_pes
            ctx.put("b", 1, nxt)
            ctx.barrier_all()
            ctx.local_read("b")

        r = run_spmd(main, 2, race_detection=True)
        assert r.races == []
