"""Tests for the trace report tool (repro.noc.report)."""

from repro import run_lolcode
from repro.noc import epiphany_iii
from repro.noc.report import (
    comm_matrix,
    render_activity,
    render_comm_matrix,
    render_machine_costs,
    render_report,
)

from .conftest import lol

RING = lol(
    "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
    "HUGZ\n"
    "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "I HAS A local ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
    "TXT MAH BFF k, MAH local R UR a\n"
)


def traced(n_pes=4):
    return run_lolcode(RING, n_pes, seed=1, trace=True).trace


class TestCommMatrix:
    def test_ring_pattern(self):
        m = comm_matrix(traced(4))
        # PE i gets 4*8 bytes from PE i+1, nothing else.
        for src in range(4):
            for dst in range(4):
                expected = 32 if dst == (src + 1) % 4 else 0
                assert m[src][dst] == expected

    def test_self_transfers_excluded(self):
        src = lol(
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "TXT MAH BFF ME, UR x R 1\n"
        )
        trace = run_lolcode(src, 2, seed=1, trace=True).trace
        m = comm_matrix(trace)
        assert all(m[i][i] == 0 for i in range(2))

    def test_render_contains_all_pes(self):
        text = render_comm_matrix(traced(3))
        for pe in range(3):
            assert f"PE{pe}" in text


class TestActivity:
    def test_rows_per_pe(self):
        text = render_activity(traced(4))
        assert len([l for l in text.splitlines() if l.strip().startswith(tuple("0123"))]) == 4

    def test_counts_present(self):
        text = render_activity(traced(2))
        assert "gets" in text and "barriers" in text


class TestFullReport:
    def test_report_sections(self):
        text = render_report(traced(2), [epiphany_iii()])
        assert "per-PE activity" in text
        assert "communication matrix" in text
        assert "modeled cost" in text
        assert "Epiphany" in text

    def test_machine_costs_render(self):
        text = render_machine_costs(traced(2), [epiphany_iii()])
        assert "ms" in text
