"""Tests for the process executor (true parallelism over shared memory).

These run real OS processes via the spawn start method, so they are
slower than the rest of the suite; the workloads are kept tiny.
"""

import pytest

from repro import run_lolcode
from repro.lang import parse
from repro.lang.errors import LolParallelError
from repro.lang.types import LolType
from repro.launcher import const_eval, plan_from_program
from repro.shmem import SymmetricPlan, run_spmd_procs

from .conftest import lol

pytestmark = pytest.mark.procs


# -- module-level workers (must be picklable for spawn) -----------------------


def _worker_ring(ctx):
    ctx.alloc_scalar("x", LolType.NUMBR)
    ctx.local_write("x", ctx.my_pe * 10)
    ctx.barrier_all()
    nxt = (ctx.my_pe + 1) % ctx.n_pes
    return int(ctx.get("x", nxt))


def _worker_locked_increment(ctx):
    ctx.alloc_scalar("c", LolType.NUMBR)
    ctx.barrier_all()
    for _ in range(20):
        ctx.set_lock("c")
        ctx.put("c", int(ctx.get("c", 0)) + 1, 0)
        ctx.clear_lock("c")
    ctx.barrier_all()
    return int(ctx.local_read("c")) if ctx.my_pe == 0 else None


def _worker_array(ctx):
    ctx.alloc_array("a", LolType.NUMBAR, 4)
    ctx.barrier_all()
    ctx.put("a", float(ctx.my_pe + 1), 0, index=ctx.my_pe)
    ctx.barrier_all()
    if ctx.my_pe == 0:
        return [float(v) for v in ctx.local_read("a")]
    return None


def _worker_collectives(ctx):
    total = ctx.allreduce(float(ctx.my_pe + 1), "sum")
    return float(total)


def _worker_crash(ctx):
    if ctx.my_pe == 1:
        raise ValueError("boom")
    ctx.barrier_all()


def _worker_straggles_on_pe1(ctx):
    import time

    if ctx.my_pe == 1:
        time.sleep(30.0)  # far beyond the caller's drain deadline
    return ctx.my_pe


def _plan(**entries) -> SymmetricPlan:
    plan = SymmetricPlan()
    for name, (t, is_array, size, lock) in entries.items():
        plan.add(name, t, is_array, size, lock)
    return plan


class TestProcExecutorPython:
    def test_scalar_ring(self):
        plan = _plan(x=(LolType.NUMBR, False, 1, False))
        r = run_spmd_procs(_worker_ring, 3, plan, barrier_timeout=60)
        assert r.returns == [10, 20, 0]

    def test_locks_across_processes(self):
        plan = _plan(c=(LolType.NUMBR, False, 1, True))
        r = run_spmd_procs(_worker_locked_increment, 3, plan, barrier_timeout=60)
        assert r.returns[0] == 60

    def test_shared_array(self):
        plan = _plan(a=(LolType.NUMBAR, True, 4, False))
        r = run_spmd_procs(_worker_array, 4, plan, barrier_timeout=60)
        assert r.returns[0] == [1.0, 2.0, 3.0, 4.0]

    def test_collectives(self):
        plan = SymmetricPlan()
        r = run_spmd_procs(_worker_collectives, 3, plan, barrier_timeout=60)
        assert r.returns == [6.0, 6.0, 6.0]

    def test_crash_is_reported(self):
        plan = SymmetricPlan()
        with pytest.raises(LolParallelError, match="boom"):
            run_spmd_procs(_worker_crash, 2, plan, barrier_timeout=15)

    @pytest.mark.slow
    def test_straggler_ranks_are_named(self):
        """One queue.get timeout must not end the drain: the PEs that
        finished are collected, and the error names exactly the ranks
        that never reported (here PE 1, and only PE 1)."""
        plan = SymmetricPlan()
        with pytest.raises(LolParallelError, match=r"PE\(s\) \[1\]") as info:
            run_spmd_procs(_worker_straggles_on_pe1, 3, plan, barrier_timeout=2)
        message = str(info.value)
        assert "completed: [0, 2]" in message

    def test_yarn_symmetric_rejected(self):
        plan = _plan(s=(LolType.YARN, False, 1, False))
        with pytest.raises(LolParallelError, match="numeric"):
            run_spmd_procs(_worker_ring, 2, plan)


class TestProcExecutorLolcode:
    def test_lol_program_on_processes(self):
        body = (
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R PRODUKT OF ME AN 10\nHUGZ\n"
            "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "I HAS A y ITZ A NUMBR\n"
            "TXT MAH BFF k, y R UR x\n"
            "VISIBLE y"
        )
        r = run_lolcode(lol(body), 3, executor="process", barrier_timeout=60)
        assert r.outputs == ["10\n", "20\n", "0\n"]

    def test_lol_locks_on_processes(self):
        body = (
            "WE HAS A c ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
            "HUGZ\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "  IM SRSLY MESIN WIF c\n"
            "  TXT MAH BFF 0, UR c R SUM OF UR c AN 1\n"
            "  DUN MESIN WIF c\n"
            "IM OUTTA YR l\n"
            "HUGZ\nVISIBLE c"
        )
        r = run_lolcode(lol(body), 3, executor="process", barrier_timeout=60)
        assert r.outputs[0] == "30\n"

    def test_race_detection_unsupported(self):
        with pytest.raises(LolParallelError):
            run_lolcode(lol("VISIBLE 1"), 2, executor="process", race_detection=True)


class TestSymmetricPlanning:
    def test_plan_collects_declarations(self):
        prog = parse(
            lol(
                "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                "WE HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 8\n"
                "I HAS A local ITZ 3"
            )
        )
        plan = plan_from_program(prog, 4)
        assert plan.entries["x"] == (LolType.NUMBR, False, 1, True)
        assert plan.entries["a"] == (LolType.NUMBAR, True, 8, False)
        assert "local" not in plan.entries

    def test_plan_finds_nested_declarations(self):
        prog = parse(
            lol(
                "BOTH SAEM ME AN 0, O RLY?\n"
                "YA RLY,\n  WE HAS A q ITZ SRSLY A NUMBR\nOIC"
            )
        )
        plan = plan_from_program(prog, 2)
        assert "q" in plan.entries

    def test_const_eval_frenz(self):
        prog = parse(
            lol("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ PRODUKT OF MAH FRENZ AN 4")
        )
        plan = plan_from_program(prog, 3)
        assert plan.entries["a"][2] == 12

    def test_const_eval_me_rejected(self):
        prog = parse(
            lol("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ SUM OF ME AN 1")
        )
        with pytest.raises(LolParallelError):
            plan_from_program(prog, 2)

    def test_const_eval_variable_rejected(self):
        prog = parse(
            lol("I HAS A n ITZ 4\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ n")
        )
        with pytest.raises(LolParallelError):
            plan_from_program(prog, 2)

    def test_const_eval_arith(self):
        from repro.lang import ast

        expr = ast.BinOp("mul", ast.IntLit(4), ast.IntLit(8))
        assert const_eval(expr, 1) == 32
