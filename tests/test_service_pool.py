"""Tests for the warm worker pool (``repro.service.pool``).

These spawn real OS processes; the pool is reused across a module's
tests where possible to keep the suite fast — warmness is the point.
"""

import os
import signal
import time

import pytest

from repro import run_lolcode
from repro.lang.errors import LolParallelError
from repro.lang.types import LolType
from repro.service.pool import (
    SegmentPool,
    WorkerPool,
    _size_class,
    get_default_pool,
    shutdown_default_pool,
)
from repro.shmem import SymmetricPlan

from .conftest import lol

pytestmark = [pytest.mark.procs, pytest.mark.service]


# -- module-level workers (must be picklable for spawn) -----------------------


def _worker_ring(ctx):
    ctx.alloc_scalar("x", LolType.NUMBR)
    ctx.local_write("x", ctx.my_pe * 10)
    ctx.barrier_all()
    nxt = (ctx.my_pe + 1) % ctx.n_pes
    return int(ctx.get("x", nxt))


def _worker_locked_increment(ctx):
    ctx.alloc_scalar("c", LolType.NUMBR)
    ctx.barrier_all()
    for _ in range(10):
        ctx.set_lock("c")
        ctx.put("c", int(ctx.get("c", 0)) + 1, 0)
        ctx.clear_lock("c")
    ctx.barrier_all()
    return int(ctx.local_read("c")) if ctx.my_pe == 0 else None


def _worker_pid(ctx):
    return os.getpid()


def _worker_raise(ctx):
    if ctx.my_pe == 1:
        raise ValueError("boom on PE 1")
    ctx.barrier_all()
    return None


def _worker_hard_crash(ctx):
    if ctx.my_pe == 1:
        os._exit(3)
    ctx.barrier_all()
    return None


def _worker_raise_while_locked(ctx):
    ctx.alloc_scalar("c", LolType.NUMBR)
    ctx.barrier_all()
    ctx.set_lock("c")
    raise ValueError("died holding the lock")


def _worker_sleep_then_report(ctx):
    if ctx.my_pe == 1:
        time.sleep(30.0)
    return ctx.my_pe


def _ring_plan():
    plan = SymmetricPlan()
    plan.add("x", LolType.NUMBR, False, 1, False)
    return plan


def _lock_plan():
    plan = SymmetricPlan()
    plan.add("c", LolType.NUMBR, False, 1, True)
    return plan


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(4) as p:
        yield p


class TestWorkerPool:
    def test_ring(self, pool):
        result = pool.run(_worker_ring, 4, _ring_plan())
        assert result.returns == [10, 20, 30, 0]

    def test_workers_persist_across_jobs(self, pool):
        pids_a = pool.run(_worker_pid, 4, SymmetricPlan()).returns
        pids_b = pool.run(_worker_pid, 4, SymmetricPlan()).returns
        assert pids_a == pids_b  # same warm processes served both jobs
        assert len(set(pids_a)) == 4
        assert pids_a == pool.worker_pids()

    def test_locks_across_jobs(self, pool):
        for _ in range(2):
            result = pool.run(_worker_locked_increment, 4, _lock_plan())
            assert result.returns[0] == 40

    def test_segments_recycled_by_size_class(self, pool):
        before = pool.segments.created
        pool.run(_worker_ring, 4, _ring_plan())
        pool.run(_worker_ring, 4, _ring_plan())
        assert pool.segments.created == before  # same class: only reuse
        assert pool.segments.reused >= 2

    def test_fewer_pes_than_pool_size(self, pool):
        result = pool.run(_worker_ring, 2, _ring_plan())
        assert result.returns == [10, 0]

    def test_job_larger_than_pool_rejected(self, pool):
        with pytest.raises(LolParallelError, match="pool has 4 workers"):
            pool.run(_worker_ring, 5, _ring_plan())

    def test_error_propagates_and_pool_survives(self, pool):
        with pytest.raises(LolParallelError, match="PE 1.*boom on PE 1"):
            pool.run(_worker_raise, 4, SymmetricPlan(), barrier_timeout=10.0)
        # The barrier was aborted by the failing PE; the next job must
        # still run cleanly on the same (reset) primitives.
        result = pool.run(_worker_ring, 4, _ring_plan())
        assert result.returns == [10, 20, 30, 0]

    def test_crashed_worker_replaced_transparently(self, pool):
        pids = pool.run(_worker_pid, 4, SymmetricPlan()).returns
        replaced_before = pool.workers_replaced
        os.kill(pids[2], signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while pool._workers[2].process.is_alive():
            assert time.monotonic() < deadline, "worker did not die"
            time.sleep(0.05)
        result = pool.run(_worker_pid, 4, SymmetricPlan())
        assert pool.workers_replaced == replaced_before + 1
        assert result.returns[2] != pids[2]
        assert result.returns[:2] == pids[:2]  # siblings kept their slots

    def test_error_while_holding_lock_does_not_poison_the_bank(self, pool):
        """The lock bank is persistent: a job erroring inside a locked
        region must release its locks on the way out, or every later
        job mapping that slot would block until timeout."""
        with pytest.raises(LolParallelError, match="died holding the lock"):
            pool.run(
                _worker_raise_while_locked,
                2,
                _lock_plan(),
                barrier_timeout=10.0,
            )
        result = pool.run(
            _worker_locked_increment, 4, _lock_plan(), barrier_timeout=10.0
        )
        assert result.returns[0] == 40

    def test_mid_job_hard_crash_names_the_pe(self, pool):
        rebuilds_before = pool.rebuilds
        with pytest.raises(
            LolParallelError, match=r"(?s)PE 1.*worker process died"
        ):
            pool.run(
                _worker_hard_crash, 4, SymmetricPlan(), barrier_timeout=10.0
            )
        # A mid-job death may have poisoned the shared primitives
        # (locks, atomics mutex), so the whole bank is rebuilt — and
        # the next job must run cleanly on the fresh one.
        assert pool.rebuilds == rebuilds_before + 1
        result = pool.run(_worker_ring, 4, _ring_plan())
        assert result.returns == [10, 20, 30, 0]

    @pytest.mark.slow
    def test_straggler_named_and_replaced(self, pool):
        with pytest.raises(LolParallelError, match=r"PE\(s\) \[1\]"):
            pool.run(
                _worker_sleep_then_report,
                2,
                SymmetricPlan(),
                barrier_timeout=1.0,
            )
        result = pool.run(_worker_ring, 2, _ring_plan())
        assert result.returns == [10, 0]

    def test_closed_pool_rejects_jobs(self):
        p = WorkerPool(1)
        p.close()
        with pytest.raises(LolParallelError, match="closed"):
            p.run(_worker_ring, 1, _ring_plan())


class TestSegmentPool:
    def test_size_classes_are_powers_of_two(self):
        assert _size_class(1) == 4096
        assert _size_class(4096) == 4096
        assert _size_class(4097) == 8192
        assert _size_class(100_000) == 131072

    def test_acquire_release_reuses(self):
        segments = SegmentPool()
        try:
            a = segments.acquire(100)
            segments.release(a)
            b = segments.acquire(200)  # same class -> same segment back
            assert b.name == a.name
            assert segments.created == 1
            assert segments.reused == 1
            c = segments.acquire(10_000)  # different class -> new segment
            assert c.name != a.name
            assert segments.created == 2
        finally:
            segments.close()


class TestPoolExecutor:
    """``executor="pool"`` through the launcher (the public surface)."""

    def test_lol_program_matches_thread_and_process(self):
        src = lol(
            "WE HAS A x ITZ SRSLY A NUMBR\n"
            "x R PRODUKT OF ME AN 7\n"
            "HUGZ\n"
            "I HAS A nxt ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
            "TXT MAH BFF nxt AN STUFF\n"
            "  VISIBLE UR x\n"
            "TTYL\n"
        )
        pooled = run_lolcode(src, 4, executor="pool", seed=3)
        threaded = run_lolcode(src, 4, executor="thread", seed=3)
        processed = run_lolcode(src, 4, executor="process", seed=3)
        assert pooled.outputs == threaded.outputs == processed.outputs

    def test_trace_parity_with_process_executor(self):
        src = lol(
            "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
            "HUGZ\n"
            "a'Z ME R PRODUKT OF ME AN 2\n"
            "HUGZ\n"
            "VISIBLE a'Z 0\n"
        )
        pooled = run_lolcode(src, 4, executor="pool", seed=1, trace=True)
        processed = run_lolcode(src, 4, executor="process", seed=1, trace=True)
        assert pooled.trace.summary() == processed.trace.summary()

    def test_race_detection_rejected(self):
        with pytest.raises(LolParallelError, match="thread executor"):
            run_lolcode(
                lol("VISIBLE ME"), 2, executor="pool", race_detection=True
            )

    def test_yarn_symmetric_rejected(self):
        src = lol('WE HAS A s ITZ SRSLY A YARN\ns R "hi"')
        with pytest.raises(LolParallelError, match="numeric"):
            run_lolcode(src, 2, executor="pool")

    def test_default_pool_grows_for_larger_jobs(self):
        shutdown_default_pool()
        try:
            run_lolcode(lol("VISIBLE ME"), 1, executor="pool")
            assert get_default_pool().size == 1
            run_lolcode(lol("VISIBLE ME"), 3, executor="pool")
            assert get_default_pool().size == 3
            # Smaller jobs keep the grown pool.
            run_lolcode(lol("VISIBLE ME"), 2, executor="pool")
            assert get_default_pool().size == 3
        finally:
            shutdown_default_pool()

    def test_stdin_and_seed_plumbing(self):
        src = lol(
            "I HAS A rank ITZ ME\n"
            "I HAS A line ITZ A YARN\n"
            "GIMMEH line\n"
            'VISIBLE "PE :{rank} GOT :{line}"\n'
        )
        result = run_lolcode(
            src,
            2,
            executor="pool",
            stdin_lines=[["alpha"], ["beta"]],
        )
        assert result.outputs == ["PE 0 GOT alpha\n", "PE 1 GOT beta\n"]
