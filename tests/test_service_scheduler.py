"""Tests for the asyncio job scheduler (``repro.service.scheduler``)."""

import asyncio
import threading
import time

import pytest

from repro.service.scheduler import (
    JobSpec,
    JobState,
    Scheduler,
    ServiceError,
    execute_job,
)

from .conftest import lol

pytestmark = pytest.mark.service

HELLO = lol('VISIBLE "OH HAI"')
SLOW = lol(
    "I HAS A acc ITZ 0\n"
    "IM IN YR spin UPPIN YR i TIL BOTH SAEM i AN 400000\n"
    "  acc R SUM OF acc AN i\n"
    "IM OUTTA YR spin\n"
    "VISIBLE acc"
)


def run_async(coro):
    return asyncio.run(coro)


async def _started_scheduler(**kwargs) -> Scheduler:
    scheduler = Scheduler(**kwargs)
    await scheduler.start()
    return scheduler


class TestJobSpec:
    def test_source_xor_workload_required(self):
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec.from_request({})
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec.from_request({"source": HELLO, "workload": "ring"})

    def test_workload_resolves_source_and_params(self):
        spec = JobSpec.from_request(
            {"workload": "ring", "smoke": True, "n_pes": 4}
        )
        assert "HAI" in spec.source
        assert spec.workload == "ring"
        assert spec.params  # bound defaults materialized
        assert spec.filename == "<workload:ring>"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ServiceError, match="nope"):
            JobSpec.from_request({"workload": "nope"})

    def test_bad_engine_executor_npes_timeout(self):
        with pytest.raises(ServiceError, match="unknown engine"):
            JobSpec.from_request({"source": HELLO, "engine": "warp"})
        with pytest.raises(ServiceError, match="unknown executor"):
            JobSpec.from_request({"source": HELLO, "executor": "warp"})
        with pytest.raises(ServiceError, match="n_pes"):
            JobSpec.from_request({"source": HELLO, "n_pes": 0})
        with pytest.raises(ServiceError, match="timeout"):
            JobSpec.from_request({"source": HELLO, "timeout": -1})


class TestExecuteJob:
    def test_row_mirrors_lolbench_schema(self):
        row = execute_job(
            JobSpec(source=HELLO, n_pes=2, executor="thread", seed=1)
        )
        assert row["workload"] == "<source>"
        assert row["engine"] == "closure"
        assert row["executor"] == "thread"
        assert row["n_pes"] == 2
        assert row["outputs"] == ["OH HAI\n", "OH HAI\n"]
        assert row["seconds"] >= 0

    def test_workload_job_runs_checker(self):
        spec = JobSpec.from_request(
            {
                "workload": "ring",
                "smoke": True,
                "n_pes": 2,
                "executor": "thread",
                "seed": 42,
            }
        )
        row = execute_job(spec)
        assert row["checker"] == "pass"


class TestScheduler:
    def test_submit_run_wait(self):
        async def main():
            scheduler = await _started_scheduler()
            job = scheduler.submit(
                JobSpec(source=HELLO, executor="thread")
            )
            assert job.state in (JobState.QUEUED, JobState.RUNNING)
            done = await scheduler.wait(job.job_id, timeout=30)
            assert done.state is JobState.DONE
            assert done.result["output"] == "OH HAI\n"
            await scheduler.stop()

        run_async(main())

    def test_fifo_order_single_worker(self):
        async def main():
            scheduler = await _started_scheduler(max_concurrency=1)
            jobs = [
                scheduler.submit(JobSpec(source=HELLO, executor="thread"))
                for _ in range(5)
            ]
            for job in jobs:
                await scheduler.wait(job.job_id, timeout=30)
            starts = [scheduler.get(j.job_id).started_at for j in jobs]
            assert starts == sorted(starts)  # FIFO: started in submit order
            await scheduler.stop()

        run_async(main())

    def test_bounded_concurrency(self):
        async def main():
            scheduler = await _started_scheduler(max_concurrency=2)
            jobs = [
                scheduler.submit(JobSpec(source=SLOW, executor="thread"))
                for _ in range(6)
            ]
            for job in jobs:
                await scheduler.wait(job.job_id, timeout=60)
            assert all(
                scheduler.get(j.job_id).state is JobState.DONE for j in jobs
            )
            assert scheduler.peak_running <= 2
            await scheduler.stop()

        run_async(main())

    def test_job_timeout_fails_job_not_queue(self):
        async def main():
            scheduler = await _started_scheduler(max_concurrency=1)
            slow = scheduler.submit(
                JobSpec(source=SLOW, executor="thread", timeout=0.001)
            )
            after = scheduler.submit(JobSpec(source=HELLO, executor="thread"))
            done_slow = await scheduler.wait(slow.job_id, timeout=60)
            done_after = await scheduler.wait(after.job_id, timeout=60)
            assert done_slow.state is JobState.ERROR
            assert "timed out" in done_slow.error
            assert done_after.state is JobState.DONE
            await scheduler.stop()

        run_async(main())

    def test_program_error_recorded(self):
        async def main():
            scheduler = await _started_scheduler()
            job = scheduler.submit(
                JobSpec(
                    source=lol("I HAS A x ITZ QUOSHUNT OF 1 AN 0"),
                    executor="thread",
                )
            )
            done = await scheduler.wait(job.job_id, timeout=30)
            assert done.state is JobState.ERROR
            assert "QUOSHUNT" in done.error
            await scheduler.stop()

        run_async(main())

    def test_cancel_queued_job(self):
        async def main():
            scheduler = await _started_scheduler(max_concurrency=1)
            blocker = scheduler.submit(JobSpec(source=SLOW, executor="thread"))
            queued = scheduler.submit(JobSpec(source=HELLO, executor="thread"))
            assert scheduler.cancel(queued.job_id) is True
            done = await scheduler.wait(queued.job_id, timeout=30)
            assert done.state is JobState.CANCELLED
            finished = await scheduler.wait(blocker.job_id, timeout=60)
            assert finished.state is JobState.DONE  # queue kept moving
            assert scheduler.cancel(blocker.job_id) is False
            await scheduler.stop()

        run_async(main())

    def test_unknown_job_id(self):
        async def main():
            scheduler = await _started_scheduler()
            with pytest.raises(ServiceError, match="unknown job"):
                scheduler.get("job-999")
            await scheduler.stop()

        run_async(main())

    def test_terminal_jobs_evicted_beyond_retention_cap(self):
        """A persistent service must not keep every finished job (and
        its full outputs) forever: oldest terminal records are evicted
        past ``max_retained_jobs``; recent ones stay queryable."""

        async def main():
            scheduler = await _started_scheduler(
                max_concurrency=1, max_retained_jobs=3
            )
            jobs = [
                scheduler.submit(JobSpec(source=HELLO, executor="thread"))
                for _ in range(6)
            ]
            for job in jobs:
                await scheduler.wait(job.job_id, timeout=30)
            for old in jobs[:3]:
                with pytest.raises(ServiceError, match="unknown job"):
                    scheduler.get(old.job_id)
            for recent in jobs[3:]:
                assert scheduler.get(recent.job_id).state is JobState.DONE
            await scheduler.stop()

        run_async(main())

    def test_stats_shape(self):
        async def main():
            scheduler = await _started_scheduler(max_concurrency=3)
            job = scheduler.submit(JobSpec(source=HELLO, executor="thread"))
            await scheduler.wait(job.job_id, timeout=30)
            stats = scheduler.stats()
            assert stats["jobs"] == 1
            assert stats["states"]["done"] == 1
            assert stats["max_concurrency"] == 3
            await scheduler.stop()

        run_async(main())


class TestSingleFlightCompilation:
    """Concurrent identical submissions must compile once (the scheduler
    relies on the compile caches' single-flight guard)."""

    def test_concurrent_identical_sources_compile_once(self, monkeypatch):
        from repro import interp
        from repro.interp import compile_closures_cached

        compile_closures_cached.cache_clear()
        compiles = []
        compiles_mutex = threading.Lock()
        real = interp.compile_program

        def counting_compile(program, **kwargs):
            with compiles_mutex:
                compiles.append(threading.get_ident())
            time.sleep(0.05)  # widen the window a race would need
            return real(program, **kwargs)

        monkeypatch.setattr(interp, "compile_program", counting_compile)
        src = lol('VISIBLE "SINGLEFLIGHT"')
        barrier = threading.Barrier(8)
        results = []

        def one():
            barrier.wait()
            results.append(compile_closures_cached(src, "<sf>", False))

        threads = [threading.Thread(target=one) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(compiles) == 1, f"compiled {len(compiles)} times"
        assert all(r is results[0] for r in results)
        compile_closures_cached.cache_clear()
