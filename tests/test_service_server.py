"""Tests for the unix-socket server, client, smoke check, and bench
(``repro.service.server`` / ``client`` / ``smoke`` / ``bench``)."""

import json
import socket
import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.scheduler import ServiceError
from repro.service.server import BackgroundServer

from .conftest import lol

pytestmark = pytest.mark.service

HELLO = lol('VISIBLE "OH HAI SERVER"')


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(max_concurrency=4) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.socket_path, timeout=120.0)


class TestProtocol:
    def test_ping(self, client):
        assert isinstance(client.ping(), int)

    def test_submit_wait_result_roundtrip(self, client):
        job_id = client.submit(HELLO, n_pes=2, executor="thread", seed=1)
        assert job_id.startswith("job-")
        row = client.result(job_id, timeout=60)
        assert row["outputs"] == ["OH HAI SERVER\n"] * 2
        status = client.status(job_id)
        assert status["state"] == "done"
        assert status["finished_at"] >= status["submitted_at"]

    def test_workload_submission_verifies(self, client):
        job_id = client.submit(
            workload="ring", smoke=True, n_pes=4, executor="thread", seed=42
        )
        row = client.result(job_id, timeout=60)
        assert row["workload"] == "ring"
        assert row["checker"] == "pass"

    def test_error_job_reported_via_wait(self, client):
        job_id = client.submit(
            lol("I HAS A x ITZ QUOSHUNT OF 1 AN 0"), executor="thread"
        )
        job = client.wait(job_id, timeout=60)
        assert job["state"] == "error"
        assert "QUOSHUNT" in job["error"]
        with pytest.raises(ServiceError, match="finished as error"):
            client.result(job_id, timeout=60)

    def test_unknown_job_and_bad_ops(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-424242")
        with pytest.raises(ServiceError, match="unknown op"):
            client.request("frobnicate")
        with pytest.raises(ServiceError, match="exactly one"):
            client.request("submit")

    def test_malformed_json_gets_error_response(self, server):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10.0)
            sock.connect(server.socket_path)
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert "bad request" in response["error"]

    def test_stats_include_scheduler_counters(self, client):
        stats = client.stats()
        assert stats["max_concurrency"] == 4
        assert stats["jobs"] >= 1

    def test_workloads_listing(self, client):
        names = client.workloads()
        assert "ring" in names and "heat2d" in names

    def test_concurrent_submissions_all_verify(self, client):
        """Many clients at once: every registry job comes back verified."""
        failures = []
        mutex = threading.Lock()

        def one(i):
            try:
                job_id = client.submit(
                    workload="ring",
                    smoke=True,
                    n_pes=2,
                    executor="thread",
                    seed=100 + i,
                )
                row = client.result(job_id, timeout=120)
                if row["checker"] != "pass":
                    raise ServiceError(f"checker: {row['checker']}")
            except ServiceError as exc:
                with mutex:
                    failures.append(str(exc))

        threads = [threading.Thread(target=one, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not failures, failures


class TestClientEdges:
    def test_unreachable_socket(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nowhere.sock"), timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()


class TestSocketLifecycle:
    def test_stale_socket_file_is_cleared(self, tmp_path):
        """After an unclean exit (kill -9) the socket file survives; the
        next serve on the same path must reclaim it, not crash with
        'address already in use'."""
        import socket as socket_mod

        path = str(tmp_path / "stale.sock")
        leftover = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        leftover.bind(path)
        leftover.close()  # file remains, nothing listening: stale
        with BackgroundServer(path) as bg:
            assert isinstance(ServiceClient(bg.socket_path).ping(), int)

    def test_live_server_address_is_not_stolen(self, server):
        with pytest.raises(RuntimeError, match="already listening"):
            with BackgroundServer(server.socket_path):
                pass  # pragma: no cover - must not start


@pytest.mark.procs
class TestSmoke:
    def test_smoke_all_verify(self):
        from repro.service.smoke import run_smoke

        failures = run_smoke(jobs=6, max_concurrency=3)
        assert failures == []


@pytest.mark.procs
@pytest.mark.slow
class TestServiceBench:
    def test_bench_payload_shape_and_speedup(self):
        from repro.service.bench import render_bench, run_service_bench

        payload = run_service_bench(jobs=4, workload="ring", n_pes=2)
        assert {row["executor"] for row in payload["rows"]} == {
            "pool",
            "process",
        }
        for row in payload["rows"]:
            assert row["jobs"] == 4
            assert row["p50_s"] <= row["p99_s"]
            assert row["jobs_per_s"] > 0
        # The acceptance gate proper runs 50 jobs; even at 4 jobs the
        # warm pool must beat per-job process spawning comfortably.
        assert payload["speedup_pool_vs_process"] >= 3.0
        assert "pool" in render_bench(payload)
