"""Unit tests for the OpenSHMEM-like runtime substrate (repro.shmem),
exercised directly through the Python API (no LOLCODE involved)."""

import numpy as np
import pytest

from repro.lang.errors import LolParallelError, LolRuntimeError
from repro.lang.types import LolType
from repro.shmem import (
    OpKind,
    ShmemContext,
    SymmetricHeap,
    World,
    run_spmd,
    serial_context,
)


class TestSymmetricHeap:
    def test_alloc_scalar_all_pes(self):
        heap = SymmetricHeap(4)
        obj = heap.alloc("x", LolType.NUMBR)
        assert len(obj.per_pe) == 4
        assert all(cell.read() == 0 for cell in obj.per_pe)

    def test_alloc_is_idempotent(self):
        heap = SymmetricHeap(2)
        a = heap.alloc("x", LolType.NUMBR)
        b = heap.alloc("x", LolType.NUMBR)
        assert a is b

    def test_alloc_shape_conflict_rejected(self):
        heap = SymmetricHeap(2)
        heap.alloc("x", LolType.NUMBR)
        with pytest.raises(LolParallelError):
            heap.alloc("x", LolType.NUMBAR)
        with pytest.raises(LolParallelError):
            heap.alloc("x", LolType.NUMBR, is_array=True, size=4)

    def test_array_backed_by_numpy(self):
        heap = SymmetricHeap(2)
        obj = heap.alloc("a", LolType.NUMBAR, is_array=True, size=8)
        assert isinstance(obj.cell(0).data, np.ndarray)
        assert obj.cell(0).data.dtype == np.float64

    def test_numbr_array_dtype(self):
        heap = SymmetricHeap(1)
        obj = heap.alloc("a", LolType.NUMBR, is_array=True, size=4)
        assert obj.cell(0).data.dtype == np.int64

    def test_yarn_array_is_list(self):
        heap = SymmetricHeap(1)
        obj = heap.alloc("a", LolType.YARN, is_array=True, size=3)
        assert obj.cell(0).read(0) == ""

    def test_zero_size_rejected(self):
        heap = SymmetricHeap(1)
        with pytest.raises(LolParallelError):
            heap.alloc("a", LolType.NUMBR, is_array=True, size=0)

    def test_lookup_unknown(self):
        heap = SymmetricHeap(1)
        with pytest.raises(LolParallelError):
            heap.lookup("nope")

    def test_partition_nbytes(self):
        heap = SymmetricHeap(2)
        heap.alloc("a", LolType.NUMBAR, is_array=True, size=10)
        heap.alloc("x", LolType.NUMBR)
        assert heap.partition_nbytes(0) == 10 * 8 + 8


class TestPutGet:
    def test_scalar_put_get(self):
        def main(ctx: ShmemContext):
            ctx.alloc_scalar("x", LolType.NUMBR)
            ctx.local_write("x", ctx.my_pe * 10)
            ctx.barrier_all()
            nxt = (ctx.my_pe + 1) % ctx.n_pes
            return ctx.get("x", nxt)

        r = run_spmd(main, 4)
        assert r.returns == [10, 20, 30, 0]

    def test_array_element_put(self):
        def main(ctx: ShmemContext):
            ctx.alloc_array("a", LolType.NUMBR, 4)
            ctx.barrier_all()
            # everyone writes its pe into slot pe of PE 0
            ctx.put("a", ctx.my_pe + 1, 0, index=ctx.my_pe)
            ctx.barrier_all()
            return ctx.local_read("a") if ctx.my_pe == 0 else None

        r = run_spmd(main, 4)
        assert list(r.returns[0]) == [1, 2, 3, 4]

    def test_whole_array_get_is_copy(self):
        def main(ctx: ShmemContext):
            ctx.alloc_array("a", LolType.NUMBR, 2)
            ctx.local_write("a", 7, index=0)
            got = ctx.get("a", ctx.my_pe)
            got[0] = 999  # mutating the copy must not touch the heap
            return ctx.local_read("a", index=0)

        r = run_spmd(main, 1)
        assert r.returns == [7]

    def test_get_out_of_range_pe(self):
        ctx = serial_context()
        ctx.alloc_scalar("x", LolType.NUMBR)
        with pytest.raises(LolParallelError):
            ctx.get("x", 5)

    def test_index_on_scalar_rejected(self):
        ctx = serial_context()
        ctx.alloc_scalar("x", LolType.NUMBR)
        with pytest.raises(LolRuntimeError):
            ctx.get("x", 0, index=1)


class TestCollectives:
    def test_broadcast(self):
        def main(ctx):
            return ctx.broadcast(ctx.my_pe * 100 + 7, root=2)

        r = run_spmd(main, 4)
        assert r.returns == [207] * 4

    def test_allgather(self):
        def main(ctx):
            return ctx.allgather(ctx.my_pe**2)

        r = run_spmd(main, 4)
        assert all(ret == [0, 1, 4, 9] for ret in r.returns)

    def test_allreduce_ops(self):
        def main(ctx):
            return (
                ctx.allreduce(ctx.my_pe + 1, "sum"),
                ctx.allreduce(ctx.my_pe + 1, "min"),
                ctx.allreduce(ctx.my_pe + 1, "max"),
                ctx.allreduce(ctx.my_pe + 1, "prod"),
            )

        r = run_spmd(main, 4)
        assert r.returns[0] == (10, 1, 4, 24)

    def test_unknown_reduction(self):
        ctx = serial_context()
        with pytest.raises(LolRuntimeError):
            ctx.allreduce(1, "median")


class TestAtomics:
    def test_fetch_add_is_atomic(self):
        def main(ctx):
            ctx.alloc_scalar("c", LolType.NUMBR)
            ctx.barrier_all()
            for _ in range(200):
                ctx.atomic_fetch_add("c", 1, 0)
            ctx.barrier_all()
            return ctx.local_read("c") if ctx.my_pe == 0 else None

        r = run_spmd(main, 4)
        assert r.returns[0] == 800

    def test_fetch_add_returns_old(self):
        ctx = serial_context()
        ctx.alloc_scalar("c", LolType.NUMBR)
        assert ctx.atomic_fetch_add("c", 5, 0) == 0
        assert ctx.atomic_fetch_add("c", 5, 0) == 5

    def test_swap(self):
        ctx = serial_context()
        ctx.alloc_scalar("c", LolType.NUMBR)
        assert ctx.atomic_swap("c", 9, 0) == 0
        assert ctx.local_read("c") == 9

    def test_compare_swap(self):
        ctx = serial_context()
        ctx.alloc_scalar("c", LolType.NUMBR)
        assert ctx.atomic_compare_swap("c", 0, 7, 0) == 0
        assert ctx.local_read("c") == 7
        assert ctx.atomic_compare_swap("c", 0, 3, 0) == 7
        assert ctx.local_read("c") == 7  # expected mismatched: unchanged


class TestWaitUntil:
    def test_producer_consumer(self):
        def main(ctx):
            ctx.alloc_scalar("flag", LolType.NUMBR)
            ctx.alloc_scalar("data", LolType.NUMBR)
            ctx.barrier_all()
            if ctx.my_pe == 0:
                ctx.put("data", 42, 1)
                ctx.put("flag", 1, 1)
                return None
            if ctx.my_pe == 1:
                ctx.wait_until("flag", lambda v: v == 1)
                return ctx.local_read("data")
            return None

        r = run_spmd(main, 2)
        assert r.returns[1] == 42

    def test_timeout(self):
        ctx = serial_context()
        ctx.alloc_scalar("flag", LolType.NUMBR)
        with pytest.raises(LolParallelError):
            ctx.wait_until("flag", lambda v: v == 1, timeout=0.05)


class TestTrace:
    def test_remote_bytes_accounting(self):
        def main(ctx):
            ctx.alloc_array("a", LolType.NUMBAR, 16)
            ctx.barrier_all()
            nxt = (ctx.my_pe + 1) % ctx.n_pes
            ctx.put("a", list(range(16)), nxt)  # 16*8 bytes
            ctx.get("a", nxt, index=0)  # 8 bytes
            ctx.barrier_all()

        r = run_spmd(main, 2, trace=True)
        assert r.trace.total(OpKind.PUT) == 2
        assert r.trace.total(OpKind.GET) == 2
        assert r.trace.total_remote_bytes() == 2 * (16 * 8 + 8)

    def test_local_ops_not_remote_bytes(self):
        def main(ctx):
            ctx.alloc_scalar("x", LolType.NUMBR)
            ctx.put("x", 1, ctx.my_pe)  # self-put: not remote traffic

        r = run_spmd(main, 2, trace=True)
        assert r.trace.total_remote_bytes() == 0

    def test_summary_keys(self):
        def main(ctx):
            ctx.barrier_all()

        r = run_spmd(main, 2, trace=True)
        s = r.trace.summary()
        assert s["n_pes"] == 2 and s["barriers"] == 2

    def test_epoch_advances_with_barriers(self):
        def main(ctx):
            e0 = ctx.world.epoch
            ctx.barrier_all()
            e1 = ctx.world.epoch
            return e1 - e0

        r = run_spmd(main, 3)
        assert all(d == 1 for d in r.returns)


class TestWorldBasics:
    def test_bad_pe_id(self):
        world = World.for_threads(2)
        with pytest.raises(LolParallelError):
            ShmemContext(world, 5)

    def test_run_spmd_zero_pes(self):
        with pytest.raises(LolParallelError):
            run_spmd(lambda ctx: None, 0)

    def test_outputs_in_pe_order(self):
        def main(ctx):
            ctx.emit(f"pe{ctx.my_pe};")

        r = run_spmd(main, 4)
        assert r.output == "pe0;pe1;pe2;pe3;"
