"""Meta-lint: the analysis package holds itself to ruff + strict mypy.

Both tools are optional locally (the CI ``analysis`` job installs and
enforces them); when absent the tests skip rather than fail, so the
tier-1 suite has no new dependencies.
"""

import pathlib
import shutil
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCOPE = ROOT / "src" / "repro" / "analysis"


def _run(cmd):
    return subprocess.run(
        cmd, cwd=ROOT, capture_output=True, text=True, timeout=300
    )


def test_analysis_package_compiles():
    # always-on floor: every module byte-compiles
    import compileall

    assert compileall.compile_dir(str(SCOPE), quiet=2, force=True)


@pytest.mark.skipif(
    shutil.which("ruff") is None, reason="ruff not installed"
)
def test_ruff_clean():
    proc = _run(["ruff", "check", str(SCOPE)])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    shutil.which("ruff") is None, reason="ruff not installed"
)
def test_ruff_imports_sorted():
    proc = _run(["ruff", "check", "--select", "I", str(SCOPE)])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _has_mypy():
    try:
        import mypy  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.mark.skipif(not _has_mypy(), reason="mypy not installed")
def test_mypy_strict_clean():
    proc = _run(
        [sys.executable, "-m", "mypy", "--strict", str(SCOPE)]
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
