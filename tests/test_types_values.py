"""Unit tests for the type system (repro.lang.types) and operator kernels
(repro.interp.values) used by interpreter and compiled backend alike."""

import math

import pytest

from repro.interp.values import FLOP_COST, arith, binop, equals, naryop, unop
from repro.lang.errors import LolRuntimeError, LolTypeError
from repro.lang.types import (
    LolType,
    cast,
    coerce_static,
    default_value,
    format_yarn,
    numeric_result_type,
    parse_type,
    to_numbar,
    to_numbr,
    to_troof,
    type_of,
)


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, LolType.NOOB),
            (True, LolType.TROOF),
            (False, LolType.TROOF),
            (0, LolType.NUMBR),
            (-5, LolType.NUMBR),
            (0.0, LolType.NUMBAR),
            ("", LolType.YARN),
            ("cat", LolType.YARN),
        ],
    )
    def test_dynamic_types(self, value, expected):
        assert type_of(value) is expected

    def test_bool_is_troof_not_numbr(self):
        # Python bool is a subclass of int; LOLCODE must see TROOF.
        assert type_of(True) is LolType.TROOF

    def test_unknown_host_type_rejected(self):
        with pytest.raises(LolTypeError):
            type_of(object())


class TestDefaults:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (LolType.NUMBR, 0),
            (LolType.NUMBAR, 0.0),
            (LolType.YARN, ""),
            (LolType.TROOF, False),
            (LolType.NOOB, None),
        ],
    )
    def test_default_values(self, t, expected):
        assert default_value(t) == expected
        assert type_of(default_value(t)) is t or t is LolType.NOOB


class TestYarnFormatting:
    def test_numbar_two_decimals(self):
        assert format_yarn(3.14159) == "3.14"
        assert format_yarn(2.0) == "2.00"
        assert format_yarn(-0.5) == "-0.50"

    def test_troof_spelling(self):
        assert format_yarn(True) == "WIN"
        assert format_yarn(False) == "FAIL"

    def test_noob_is_empty(self):
        assert format_yarn(None) == ""


class TestCasting:
    def test_yarn_to_numbr_whitespace(self):
        assert to_numbr("  42 ") == 42

    def test_yarn_to_numbar(self):
        assert to_numbar("2.5") == 2.5

    def test_bad_yarn_numeric(self):
        with pytest.raises(LolTypeError):
            to_numbr("one")
        with pytest.raises(LolTypeError):
            to_numbar("half")

    def test_numbar_truncates_toward_zero(self):
        assert to_numbr(3.9) == 3
        assert to_numbr(-3.9) == -3

    def test_troof_to_numeric(self):
        assert to_numbr(True) == 1
        assert to_numbar(False) == 0.0

    def test_noob_explicit_casts(self):
        assert cast(None, LolType.NUMBR) == 0
        assert cast(None, LolType.NUMBAR) == 0.0
        assert cast(None, LolType.YARN) == ""
        assert cast(None, LolType.TROOF) is False

    def test_cast_to_noob(self):
        assert cast(5, LolType.NOOB) is None

    def test_troof_casting_table(self):
        assert to_troof("") is False
        assert to_troof("0") is True  # non-empty YARN is WIN (1.2 rule)
        assert to_troof(0) is False
        assert to_troof(0.0) is False
        assert to_troof(-1) is True

    def test_parse_type(self):
        assert parse_type("NUMBR") is LolType.NUMBR
        with pytest.raises(LolTypeError):
            parse_type("INTEGER")


class TestStaticCoercion:
    def test_numeric_widening(self):
        assert coerce_static(2, LolType.NUMBAR, "x") == 2.0
        assert coerce_static(2.9, LolType.NUMBR, "x") == 2

    def test_troof_to_numeric(self):
        assert coerce_static(True, LolType.NUMBR, "x") == 1

    def test_numeric_to_troof(self):
        assert coerce_static(5, LolType.TROOF, "x") is True

    def test_yarn_rejected_into_numeric(self):
        with pytest.raises(LolTypeError):
            coerce_static("5", LolType.NUMBR, "x")

    def test_numeric_rejected_into_yarn(self):
        with pytest.raises(LolTypeError):
            coerce_static(5, LolType.YARN, "x")

    def test_same_type_passthrough(self):
        assert coerce_static("cat", LolType.YARN, "x") == "cat"

    def test_numeric_result_type(self):
        assert numeric_result_type(LolType.NUMBR, LolType.NUMBR) is LolType.NUMBR
        assert numeric_result_type(LolType.NUMBR, LolType.NUMBAR) is LolType.NUMBAR


class TestArithKernels:
    def test_int_ops_stay_int(self):
        for op in ("add", "sub", "mul", "div", "mod", "max", "min"):
            assert isinstance(arith(op, 7, 2), int)

    def test_float_contaminates(self):
        assert isinstance(arith("add", 7, 2.0), float)

    def test_yarn_operands_parse(self):
        assert arith("add", "3", "4") == 7
        assert arith("add", "3.5", 1) == 4.5

    def test_trunc_division_table(self):
        assert arith("div", 7, 2) == 3
        assert arith("div", -7, 2) == -3
        assert arith("div", 7, -2) == -3
        assert arith("div", -7, -2) == 3

    def test_c_modulo_table(self):
        assert arith("mod", 7, 3) == 1
        assert arith("mod", -7, 3) == -1
        assert arith("mod", 7, -3) == 1
        assert arith("mod", -7, -3) == -1

    def test_float_mod_is_fmod(self):
        assert arith("mod", 7.5, 2.0) == math.fmod(7.5, 2.0)

    def test_division_by_zero(self):
        with pytest.raises(LolRuntimeError):
            arith("div", 1, 0)
        with pytest.raises(LolRuntimeError):
            arith("mod", 1, 0)

    def test_unknown_op(self):
        with pytest.raises(LolRuntimeError):
            arith("pow", 1, 2)
        with pytest.raises(LolRuntimeError):
            binop("nand", True, False)
        with pytest.raises(LolRuntimeError):
            unop("neg", 1)
        with pytest.raises(LolRuntimeError):
            naryop("median", [1])


class TestEqualsKernel:
    def test_cross_numeric(self):
        assert equals(2, 2.0)
        assert not equals(2, 2.5)

    def test_yarn_vs_number_false(self):
        assert not equals("2", 2)

    def test_troof_vs_number(self):
        # TROOF and NUMBR are different types: not SAEM (1.2 rule).
        assert not equals(True, 1)

    def test_noob_equals_noob(self):
        assert equals(None, None)


class TestUnopKernels:
    def test_square_preserves_int(self):
        assert unop("square", 5) == 25
        assert isinstance(unop("square", 5), int)

    def test_square_of_yarn(self):
        assert unop("square", "3") == 9

    def test_sqrt_negative(self):
        with pytest.raises(LolRuntimeError):
            unop("sqrt", -4)

    def test_recip_zero(self):
        with pytest.raises(LolRuntimeError):
            unop("recip", 0)

    def test_not_truthiness(self):
        assert unop("not", "") is True
        assert unop("not", "x") is False


class TestNaryKernels:
    def test_smoosh_formats(self):
        assert naryop("smoosh", [1, " ", 2.5, " ", True]) == "1 2.50 WIN"

    def test_all_any_empty_behaviour(self):
        assert naryop("all", []) is True
        assert naryop("any", []) is False


class TestFlopCosts:
    def test_sqrt_more_expensive(self):
        assert FLOP_COST["sqrt"] > FLOP_COST["add"]

    def test_all_arith_ops_costed(self):
        for op in ("add", "sub", "mul", "div", "mod", "square", "sqrt", "recip"):
            assert FLOP_COST[op] >= 1
