"""Register-bytecode VM engine tests.

Covers the pieces that make ``engine="vm"`` the fastest pure-Python
path and keep it honest:

* superinstruction fusion (``INC_JMP``, fused compare-branches,
  ``PUT_BARRIER``, ``GET_BIN``);
* jump patching (no unresolved labels, all targets in range);
* symmetric-access inline caches (hit on repeat access, invalidated by
  a heap-version bump);
* ``LOOP_VEC`` — the guarded loop vectorizer: it runs where legal,
  bails to bit-identical scalar execution where not, and never
  mis-vectorizes a loop-carried recurrence;
* ``loldis`` golden snapshot (the disassembly is deterministic).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lang import parse
from repro.launcher import run_lolcode
from repro.shmem.api import serial_context
from repro.vm import Machine, compile_program_vm, disassemble_source
from repro.vm import isa
from repro.vm.isa import Label

from .conftest import lol

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _compile(src: str, **kwargs):
    return compile_program_vm(parse(src), **kwargs)


def _ops(co) -> list:
    return [ins[0] for ins in co.code]


# ---------------------------------------------------------------------------
# Superinstruction fusion and jump patching.
# ---------------------------------------------------------------------------


class TestCompile:
    def test_counter_loop_fuses_inc_jmp_and_compare_branch(self):
        prog = _compile(
            lol(
                "I HAS A acc ITZ 0\n"
                "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
                "  acc R SUM OF acc AN i\n"
                "IM OUTTA YR l\n"
                "VISIBLE acc"
            )
        )
        ops = _ops(prog.co)
        assert isa.INC_JMP in ops, "loop back-edge must fuse incr+jump"
        assert isa.BR_EQ_SC in ops, (
            "TIL BOTH SAEM i AN <const> must fuse to a compare-branch"
        )

    def test_put_hugz_fuses_to_put_barrier(self):
        prog = _compile(
            lol(
                "WE HAS A s ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                "TXT MAH BFF 0 AN STUFF,\n"
                "  UR s R ME\n"
                "  HUGZ\n"
                "TTYL"
            )
        )
        ops = _ops(prog.co)
        assert isa.PUT_BARRIER in ops
        assert isa.PUT not in ops, "the put must be consumed by the fusion"

    def test_remote_get_feeding_binop_fuses_to_get_bin(self):
        prog = _compile(
            lol(
                "WE HAS A s ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                "I HAS A nxt ITZ 0\n"
                "I HAS A got ITZ 0\n"
                "TXT MAH BFF nxt AN STUFF,\n"
                "  got R SUM OF UR s AN nxt\n"
                "TTYL"
            )
        )
        assert isa.GET_BIN in _ops(prog.co)

    def test_jump_targets_patched_and_in_range(self):
        prog = _compile(
            lol(
                "I HAS A n ITZ 0\n"
                "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n"
                "  BOTH SAEM i AN 3, O RLY?\n"
                "    YA RLY, n R SUM OF n AN 10\n"
                "    NO WAI, n R SUM OF n AN 1\n"
                "  OIC\n"
                "IM OUTTA YR l\n"
                "VISIBLE n"
            )
        )
        n = len(prog.co.code)
        for pc, ins in enumerate(prog.co.code):
            for i, kind in enumerate(isa.OPFIELDS[ins[0]], start=1):
                if kind == "j":
                    target = ins[i]
                    assert not isinstance(target, Label), (
                        f"unpatched label at pc {pc}"
                    )
                    assert 0 <= target < n, (
                        f"jump target {target} out of range at pc {pc}"
                    )

    def test_count_steps_disables_vectorization(self):
        src = lol(
            "I HAS A u ITZ LOTZ A NUMBARS AN THAR IZ 8\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n"
            "  u'Z i R PRODUKT OF 2.5 AN i\n"
            "IM OUTTA YR l"
        )
        assert isa.LOOP_VEC in _ops(_compile(src).co)
        assert isa.LOOP_VEC not in _ops(_compile(src, count_steps=True).co)
        assert isa.STEP in _ops(_compile(src, count_steps=True).co)


# ---------------------------------------------------------------------------
# Symmetric-access inline caches.
# ---------------------------------------------------------------------------


class TestInlineCaches:
    # VISIBLE in the body keeps the loop un-vectorizable, so the
    # symmetric load actually executes once per iteration.
    CACHED_LOOP = lol(
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "x R 2\n"
        "I HAS A acc ITZ 0\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
        "  VISIBLE x\n"
        "  acc R SUM OF acc AN x\n"
        "IM OUTTA YR l\n"
        "VISIBLE acc"
    )

    def test_repeat_access_hits_cache(self):
        ctx = serial_context()
        m = _compile(self.CACHED_LOOP).run(ctx)
        # 3 distinct access sites (one store, two loads), 21 dynamic
        # accesses: each site misses exactly once, then hits.
        assert m.sym_misses == 3
        assert ctx.output.endswith("20\n")

    # A mid-loop symmetric allocation bumps heap.version, which must
    # invalidate every populated cache entry (one extra miss), without
    # changing the result.
    _BUMPED = lol(
        "HOW IZ I bump\n"
        "  WE HAS A extra ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "  FOUND YR 0\n"
        "IF U SAY SO\n"
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "x R 2\n"
        "I HAS A acc ITZ 0\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 6\n"
        "  acc R SUM OF acc AN x\n"
        "  BOTH SAEM i AN 2, O RLY?\n"
        "    YA RLY, I HAS A junk ITZ I IZ bump MKAY\n"
        "  OIC\n"
        "IM OUTTA YR l\n"
        "VISIBLE acc"
    )

    def test_heap_version_bump_invalidates(self):
        ctx_bump = serial_context()
        m_bump = _compile(self._BUMPED).run(ctx_bump)
        no_bump = self._BUMPED.replace(
            "WE HAS A extra ITZ SRSLY A NUMBR AN IM SHARIN IT",
            "I HAS A extra ITZ 0",
        )
        ctx_flat = serial_context()
        m_flat = _compile(no_bump).run(ctx_flat)
        assert m_bump.sym_misses == m_flat.sym_misses + 1
        assert ctx_bump.output == ctx_flat.output == "12\n"


# ---------------------------------------------------------------------------
# LOOP_VEC: the guarded loop vectorizer.
# ---------------------------------------------------------------------------


VEC_FILL = lol(
    "I HAS A u ITZ LOTZ A NUMBARS AN THAR IZ 8\n"
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n"
    "  u'Z i R PRODUKT OF 2.5 AN i\n"
    "IM OUTTA YR l\n"
    "VISIBLE u'Z 7"
)


class TestLoopVec:
    def test_vectorized_loop_runs(self):
        ctx = serial_context()
        m = _compile(VEC_FILL).run(ctx)
        assert m.vec_runs == 1
        assert m.vec_bails == 0
        # Output identical to scalar semantics.
        assert ctx.output == "17.50\n"

    def test_runtime_bail_falls_back_to_identical_scalar(self):
        # fast_sym off (what a race-detection world sets) forces every
        # plan to bail at run time; the scalar path must produce the
        # same output.
        prog = _compile(VEC_FILL)
        ctx = serial_context()
        m = Machine(ctx)
        m.fast_sym = False
        m.run(prog)
        assert m.vec_runs == 0
        assert m.vec_bails == 1
        assert ctx.output == "17.50\n"

    def test_nonvectorizable_loop_gets_no_plan(self):
        # VISIBLE inside the body can't be batched: no LOOP_VEC emitted.
        prog = _compile(
            lol(
                "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
                "  VISIBLE i\n"
                "IM OUTTA YR l"
            )
        )
        assert isa.LOOP_VEC not in _ops(prog.co)

    def test_zero_trip_loop(self):
        ctx = serial_context()
        m = _compile(
            lol(
                "I HAS A u ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
                "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 0\n"
                "  u'Z i R 9\n"
                "IM OUTTA YR l\n"
                "VISIBLE u'Z 0"
            )
        ).run(ctx)
        assert ctx.output == "0\n"

    @pytest.mark.parametrize("n_pes", [1, 4])
    def test_accumulator_fold_matches_closure(self, n_pes):
        # The nbody inner-loop shape: element read-modify-write of a
        # private array at an invariant index — a sequential fold, not
        # a broadcast.  Regression for the mis-vectorization the
        # differential harness caught during development.
        src = lol(
            "I HAS A acc ITZ LOTZ A NUMBARS AN THAR IZ 2\n"
            "I HAS A d ITZ LOTZ A NUMBARS AN THAR IZ 8\n"
            "IM IN YR init UPPIN YR j TIL BOTH SAEM j AN 8\n"
            "  d'Z j R SUM OF j AN 0.5\n"
            "IM OUTTA YR init\n"
            "IM IN YR l UPPIN YR j TIL BOTH SAEM j AN 8\n"
            "  acc'Z 0 R SUM OF acc'Z 0 AN d'Z j\n"
            "IM OUTTA YR l\n"
            "VISIBLE acc'Z 0"
        )
        vm = run_lolcode(src, n_pes, seed=3, engine="vm")
        cl = run_lolcode(src, n_pes, seed=3, engine="closure")
        assert vm.outputs == cl.outputs

    def test_self_referential_recurrence_not_mis_vectorized(self):
        # a[0] doubling each iteration is a loop-carried recurrence on
        # both sides of the assignment; hoisting the read would turn
        # geometric growth into linear.  Whether the vectorizer folds
        # or bails, the result must match the scalar engines.
        src = lol(
            "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 1\n"
            "a'Z 0 R 1\n"
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "  a'Z 0 R SUM OF a'Z 0 AN a'Z 0\n"
            "IM OUTTA YR l\n"
            "VISIBLE a'Z 0"
        )
        vm = run_lolcode(src, 1, engine="vm")
        assert vm.output == "1024\n"
        assert vm.output == run_lolcode(src, 1, engine="closure").output

    def test_stencil_matches_closure(self):
        # 3-point stencil over a symmetric array (the heat1d shape):
        # reads at i-1/i/i+1 must come from the pre-iteration array.
        src = lol(
            "WE HAS A u ITZ LOTZ A NUMBARS AN THAR IZ 10 AN IM SHARIN IT\n"
            "I HAS A w ITZ LOTZ A NUMBARS AN THAR IZ 10\n"
            "IM IN YR init UPPIN YR i TIL BOTH SAEM i AN 10\n"
            "  u'Z i R PRODUKT OF i AN i\n"
            "IM OUTTA YR init\n"
            "IM IN YR s UPPIN YR i TIL BOTH SAEM i AN 8\n"
            "  I HAS A c ITZ SUM OF i AN 1\n"
            "IM OUTTA YR s\n"
            "IM IN YR l UPPIN YR k TIL BOTH SAEM k AN 8\n"
            "  I HAS A mid ITZ SUM OF k AN 1\n"
            "  w'Z mid R QUOSHUNT OF SUM OF SUM OF u'Z k AN u'Z mid AN "
            "u'Z SUM OF k AN 2 AN 3.0\n"
            "IM OUTTA YR l\n"
            "VISIBLE w'Z 5"
        )
        vm = run_lolcode(src, 1, engine="vm")
        cl = run_lolcode(src, 1, engine="closure")
        assert vm.output == cl.output


# ---------------------------------------------------------------------------
# loldis golden snapshot.
# ---------------------------------------------------------------------------


DIS_KERNEL = (
    "HAI 1.2\n"
    "WE HAS A slot ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
    "I HAS A u ITZ LOTZ A NUMBARS AN THAR IZ 8\n"
    "IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 8\n"
    "  u'Z i R PRODUKT OF 2.5 AN i\n"
    "IM OUTTA YR fill\n"
    "I HAS A nxt ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "I HAS A got ITZ 0\n"
    "TXT MAH BFF nxt AN STUFF,\n"
    "  UR slot R ME\n"
    "  HUGZ\n"
    "  got R SUM OF UR slot AN nxt\n"
    "TTYL\n"
    "VISIBLE got\n"
    "KTHXBYE\n"
)


class TestDisassembler:
    def test_golden_snapshot(self):
        out = disassemble_source(DIS_KERNEL, filename="vm_kernel.lol")
        golden = (GOLDEN / "vm_kernel.dis").read_text()
        assert out + "\n" == golden, (
            "disassembly drifted from tests/golden/vm_kernel.dis; if the "
            "change is intentional, regenerate the golden file"
        )

    def test_deterministic_across_compiles(self):
        a = disassemble_source(DIS_KERNEL, filename="vm_kernel.lol")
        b = disassemble_source(DIS_KERNEL, filename="vm_kernel.lol")
        assert a == b

    def test_kernel_actually_runs(self):
        # The golden program is a live ring exchange, not a parse-only
        # fixture: each PE publishes ME to its left neighbour then adds
        # its own successor id to what it received.
        r = run_lolcode(DIS_KERNEL, 4, seed=0, engine="vm")
        cl = run_lolcode(DIS_KERNEL, 4, seed=0, engine="closure")
        assert r.outputs == cl.outputs
