"""Workload registry: lookup, parameter validation, and the smoke sweep
asserting every registered workload runs on 1 and 4 PEs with
bit-identical output across the closure and ast engines."""

import pytest

from repro import run_lolcode
from repro.workloads import (
    Param,
    Workload,
    WorkloadError,
    all_workloads,
    get_workload,
    nbody_source,
    register,
    workload_names,
)
from repro.workloads.irregular import (
    bfs_reference,
    sample_sort_reference,
    spmv_reference,
)
from repro.workloads.stencil import (
    heat1d_reference,
    heat2d_reference,
    heat3d_reference,
)

pytestmark = pytest.mark.workload

EXPECTED_NAMES = {
    "ring",
    "transpose",
    "heat1d",
    "heat2d",
    "heat3d",
    "nbody",
    "nbody_racy",
    "tree_reduce",
    "scan",
    "histogram",
    "pi_montecarlo",
    "bfs",
    "sample_sort",
    "spmv",
}


# ---------------------------------------------------------------------------
# Registry lookup
# ---------------------------------------------------------------------------


def test_registry_has_expected_workloads():
    names = set(workload_names())
    assert EXPECTED_NAMES <= names
    assert len(names) >= 8


def test_get_workload_roundtrip():
    for w in all_workloads():
        assert get_workload(w.name) is w


def test_get_unknown_workload_lists_registry():
    with pytest.raises(WorkloadError, match="unknown workload 'nope'") as exc:
        get_workload("nope")
    assert "heat2d" in str(exc.value)


def test_duplicate_register_rejected():
    w = get_workload("ring")
    with pytest.raises(WorkloadError, match="duplicate"):
        register(w)


def test_every_workload_is_documented():
    for w in all_workloads():
        assert w.domain and w.comm_pattern and w.description


# ---------------------------------------------------------------------------
# Parameter binding and validation
# ---------------------------------------------------------------------------


def test_bind_params_defaults_and_overrides():
    heat = get_workload("heat2d")
    params = heat.bind_params({"steps": 3})
    assert params["steps"] == 3
    assert params["rows"] == heat.param("rows").default


def test_bind_params_smoke_sizes():
    heat = get_workload("heat1d")
    assert heat.bind_params(smoke=True)["cells"] == heat.smoke["cells"]
    # explicit overrides beat smoke sizes
    assert heat.bind_params({"cells": 3}, smoke=True)["cells"] == 3


def test_unknown_param_rejected():
    with pytest.raises(WorkloadError, match="no parameter 'bogus'"):
        get_workload("ring").bind_params({"bogus": 1})


def test_param_bounds_enforced():
    with pytest.raises(WorkloadError, match="must be >= 2"):
        get_workload("nbody").bind_params({"particles": 1})
    with pytest.raises(WorkloadError, match="must be an int"):
        get_workload("ring").bind_params({"scale": "big"})
    with pytest.raises(WorkloadError, match="must be an int"):
        get_workload("ring").bind_params({"scale": True})


def test_param_maximum():
    p = Param("x", 1, 1, 4)
    assert p.validate(4) == 4
    with pytest.raises(WorkloadError, match="<= 4"):
        p.validate(5)


def test_source_is_parameterized():
    ring = get_workload("ring")
    assert "PRODUKT OF pe AN 7" in ring.source({"scale": 7})


def test_packaged_nbody_listings_match_examples():
    # The package ships its own copies (so an installed lolbench works
    # without a repo checkout); they must never drift from the
    # documentation copies under examples/lol.
    import pathlib

    import repro.workloads.nbody as nbody_mod

    packaged = pathlib.Path(nbody_mod.__file__).parent / "lol"
    examples = pathlib.Path(__file__).parent.parent / "examples" / "lol"
    for name in ("nbody2d.lol", "nbody2d_fixed.lol"):
        assert (packaged / name).read_text() == (examples / name).read_text()


def test_nbody_source_scales_particles():
    src = nbody_source(12, 3)
    assert "THAR IZ 12" in src
    assert "time AN 3" in src
    racy = nbody_source(12, 3, racy=True)
    assert racy != src  # the racy listing is missing the init barrier


# ---------------------------------------------------------------------------
# Reference simulations (checker internals)
# ---------------------------------------------------------------------------


def test_heat1d_reference_conserves_at_zero_steps():
    # One hot cell, no evolution.
    assert heat1d_reference(4, 8, 0)[0] == pytest.approx(100.0)
    assert sum(heat1d_reference(4, 8, 0)) == pytest.approx(100.0)


def test_heat2d_reference_source_dominates():
    totals = heat2d_reference(2, 2, 4, 5)
    assert totals[0] > totals[1] >= 0.0


def test_heat3d_reference_source_dominates():
    totals = heat3d_reference(2, 2, 3, 3, 4)
    assert totals[0] > totals[1] >= 0.0
    # zero steps: all heat sits in the single hot cell on PE 0
    assert heat3d_reference(2, 2, 3, 3, 0) == [100.0, 0.0]


def test_bfs_reference_reaches_root_first():
    out = bfs_reference(2, 4, 3, 6)
    # vertex 0 (PE 0, slot 0) is the root at dist 1, so PE 0's checksum
    # includes the (u+1)*dist = 1*1 term and its count is >= 1
    assert out[0][0] >= 1
    total = sum(cnt for cnt, _ in out)
    assert 1 <= total <= 8
    # more rounds can only reach more vertices
    assert sum(c for c, _ in bfs_reference(2, 4, 3, 1)) <= total


def test_sample_sort_reference_conserves_keys():
    n_pes, keys, span = 4, 8, 64
    out = sample_sort_reference(n_pes, keys, span)
    assert sum(cnt for cnt, _ in out) == n_pes * keys


def test_spmv_reference_is_positive():
    for chk in spmv_reference(4, 3, 2):
        assert chk > 0.0


class _FakeResult:
    def __init__(self, outputs):
        self.outputs = outputs


@pytest.mark.parametrize("name", ["bfs", "sample_sort", "spmv", "heat3d"])
def test_new_workload_checkers_catch_corruption(name):
    # The checkers must accept the reference answer and reject a
    # corrupted one — otherwise the differential rows prove nothing.
    w = get_workload(name)
    params = w.bind_params(smoke=True)
    n_pes = 2
    if name == "bfs":
        rows = bfs_reference(n_pes, params["verts"], params["maxdeg"], params["rounds"])
        good = [f"PE {pe} REACHED {c} CHK {k}\n" for pe, (c, k) in enumerate(rows)]
    elif name == "sample_sort":
        rows = sample_sort_reference(n_pes, params["keys"], params["span"])
        good = [f"PE {pe} CNT {c} CHK {k}\n" for pe, (c, k) in enumerate(rows)]
    elif name == "spmv":
        vals = spmv_reference(n_pes, params["rows"], params["nnzrow"])
        good = [f"PE {pe} CHK {v}\n" for pe, v in enumerate(vals)]
    else:
        vals = heat3d_reference(
            n_pes, params["nz"], params["nx"], params["ny"], params["steps"]
        )
        good = [f"PE {pe} CUBE HEAT: {v}\n" for pe, v in enumerate(vals)]
    assert w.check(_FakeResult(good), n_pes, params) == []
    bad = list(good)
    bad[1] = bad[1].replace(" ", "  ", 1) if name in ("spmv", "heat3d") else (
        bad[1][:-2] + "9\n" if not bad[1].rstrip().endswith("9") else bad[1][:-2] + "8\n"
    )
    problems = w.check(_FakeResult(bad), n_pes, params)
    assert problems and "PE 1" in problems[0]


# ---------------------------------------------------------------------------
# The smoke sweep: every workload, 1 and 4 PEs, both engines,
# bit-identical output (the tentpole acceptance criterion).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
@pytest.mark.parametrize("n_pes", [1, 4])
def test_workload_smoke_cross_engine(name, n_pes):
    w = get_workload(name)
    params = w.bind_params(smoke=True)
    src = w.source(params)
    outputs = {}
    for engine in ("closure", "ast"):
        result = run_lolcode(src, n_pes, seed=42, engine=engine)
        assert w.check(result, n_pes, params) == [], (name, n_pes, engine)
        outputs[engine] = result.output
    if w.deterministic:
        assert outputs["closure"] == outputs["ast"], (name, n_pes)
