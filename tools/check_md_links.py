#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for ``[text](target)`` links, resolves
relative targets against the file's directory, and exits non-zero
listing any target that does not exist.  External schemes
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
ignored; a ``path#anchor`` link is checked for the path only (anchor
validity is the document's own business).

CI runs this in the docs job; locally::

    python tools/check_md_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Directories never scanned (generated/vendored content).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".claude", "node_modules"}

#: [text](target) with an optional title; images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(\s*<?([^)>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files() -> list[pathlib.Path]:
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(REPO_ROOT).parts):
            continue
        out.append(path)
    return out


def check_file(path: pathlib.Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                    f"broken link -> {target}"
                )
    return problems


def main() -> int:
    problems: list[str] = []
    files = md_files()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken intra-repo markdown link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
