#!/usr/bin/env python
"""CI gate: the disarmed observability plane must be (near) free.

Two checks, both hard failures:

1. **Structural** — the VM dispatch loop (``src/repro/vm/machine.py``)
   must contain no instrumentation at all: the per-opcode profiler
   wraps the code object from the *outside* (``repro.obs.vmprof``) and
   the VM's counters flush once per run in ``VMProgram.run``.  Any
   ``obs`` reference appearing in the dispatch loop is an immediate
   failure, whatever it costs.

2. **Analytic overhead bound** — every other instrumented site pays one
   module-attribute load plus a ``None`` test when disarmed.  Measure
   that per-site cost with ``timeit``, count how many sites one
   ``heat1d`` VM run actually crosses (by running it once with metrics
   armed and reading the registry back), and require::

       crossings * per_site_cost  <  2% * disarmed wall time

   This bounds the *instrumentation* overhead directly instead of
   diffing two noisy end-to-end timings, so the gate is stable on
   shared CI runners while still failing if someone puts a registry
   lookup or a ``perf_counter`` call on the disarmed path.

Run from the repo root: ``PYTHONPATH=src python tools/check_obs_overhead.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys
import time
import timeit

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.launcher import run_lolcode  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

#: Sites outside the comm plane that one run crosses a handful of
#: times (launch, parse/compile spans, scheduler-free): a fixed pad so
#: the bound stays conservative.
FIXED_SITE_PAD = 32

THRESHOLD = 0.02
N_PES = 2
REPS = 5


def check_structural() -> None:
    import repro.vm.machine as machine_mod

    source = pathlib.Path(machine_mod.__file__).read_text()
    if re.search(r"\b_?obs\b", source) or "ACTIVE" in source:
        raise SystemExit(
            "FAIL: src/repro/vm/machine.py references the obs plane — "
            "the dispatch loop must stay instrumentation-free "
            "(profile via repro.obs.vmprof, flush counters in "
            "VMProgram.run)"
        )
    print("structural: vm/machine.py is instrumentation-free")


def measure_site_cost() -> float:
    """Per-site disarmed cost: one attribute load + None test."""
    n = 1_000_000
    total = timeit.timeit(
        "rt = _obs.ACTIVE\n"
        "if rt is not None:\n"
        "    raise AssertionError",
        setup="from repro import obs as _obs",
        number=n,
    )
    return total / n


def main() -> int:
    check_structural()

    workload = get_workload("heat1d")
    params = workload.bind_params(None, smoke=True)
    source = workload.source(params)

    def once() -> None:
        run_lolcode(
            source, N_PES, executor="thread", engine="vm", seed=42
        )

    obs.disarm()
    obs.reset_registry()
    once()  # warm the parse/compile caches before timing

    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        once()
        best = min(best, time.perf_counter() - t0)

    # Count the instrumented sites the run crosses: one registry event
    # per comm op / barrier observation, plus the fixed pad.
    obs.arm("metrics")
    once()
    reg = obs.get_registry()
    comm = reg.get("lol_comm_ops_total")
    barrier = reg.get("lol_barrier_wait_seconds")
    crossings = FIXED_SITE_PAD
    if comm is not None:
        crossings += int(comm.total())
    if barrier is not None:
        merged = barrier.merged_summary()
        if merged:
            crossings += merged["count"]
    obs.disarm()
    obs.reset_registry()

    per_site = measure_site_cost()
    overhead = crossings * per_site
    fraction = overhead / best

    print(
        f"disarmed heat1d vm (np={N_PES}, smoke): best of {REPS} = "
        f"{best * 1e3:.2f} ms"
    )
    print(
        f"sites crossed per run: {crossings} "
        f"(comm + barriers + {FIXED_SITE_PAD} pad)"
    )
    print(f"per-site disarmed cost: {per_site * 1e9:.1f} ns")
    print(
        f"bounded instrumentation overhead: {overhead * 1e6:.1f} µs "
        f"= {fraction * 100:.3f}% of the run (threshold "
        f"{THRESHOLD * 100:.0f}%)"
    )
    if fraction >= THRESHOLD:
        print("FAIL: disarmed instrumentation exceeds the overhead budget")
        return 1
    print("ok: disarmed instrumentation is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
